#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "common/error.h"

namespace homp::obs {

namespace {

/// Deterministic number rendering shared by both exporters: integers
/// print without a fraction, everything else round-trips via %.17g.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void json_escape_into(std::ostream& os, const std::string& s) {
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"') {
      os << "\\\"";
    } else if (c == '\\') {
      os << "\\\\";
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      os << buf;
    } else {
      os << c;
    }
  }
}

}  // namespace

void Histogram::observe(double v) noexcept {
  int idx = 0;
  if (v >= kBaseSeconds) {
    // Bucket index from the binary exponent: v in [base*2^i, base*2^(i+1)).
    idx = static_cast<int>(std::floor(std::log2(v / kBaseSeconds)));
    if (idx < 0) idx = 0;
    if (idx >= kNumBuckets) idx = kNumBuckets - 1;
  }
  buckets_[idx] += 1;
  count_ += 1;
  sum_ += v;
}

void Histogram::add_bucket(int i, std::uint64_t n) noexcept {
  if (i < 0 || i >= kNumBuckets) return;
  buckets_[i] += n;
  count_ += n;
}

void Histogram::merge(const Histogram& other) noexcept {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::upper_bound(int i) noexcept {
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return kBaseSeconds * std::ldexp(1.0, i + 1);
}

const char* to_string(MetricType t) noexcept {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

MetricsRegistry::Metric& MetricsRegistry::slot(std::string_view name,
                                               std::string_view labels,
                                               MetricType type) {
  auto [it, inserted] =
      metrics_.try_emplace({std::string(name), std::string(labels)});
  if (inserted) {
    it->second.type = type;
  } else {
    HOMP_REQUIRE(it->second.type == type,
                 "metric '" + std::string(name) + "' re-registered as " +
                     to_string(type) + " but is a " +
                     to_string(it->second.type));
  }
  return it->second;
}

void MetricsRegistry::add(std::string_view name, std::string_view labels,
                          double v) {
  slot(name, labels, MetricType::kCounter).value += v;
}

void MetricsRegistry::set(std::string_view name, std::string_view labels,
                          double v) {
  slot(name, labels, MetricType::kGauge).value = v;
}

void MetricsRegistry::observe(std::string_view name, std::string_view labels,
                              double v) {
  slot(name, labels, MetricType::kHistogram).hist.observe(v);
}

void MetricsRegistry::merge_histogram(std::string_view name,
                                      std::string_view labels,
                                      const Histogram& h) {
  slot(name, labels, MetricType::kHistogram).hist.merge(h);
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [key, m] : other.metrics_) {
    Metric& mine = slot(key.first, key.second, m.type);
    switch (m.type) {
      case MetricType::kCounter:
        mine.value += m.value;
        break;
      case MetricType::kGauge:
        mine.value = m.value;
        break;
      case MetricType::kHistogram:
        mine.hist.merge(m.hist);
        break;
    }
  }
}

double MetricsRegistry::value(std::string_view name,
                              std::string_view labels) const {
  auto it = metrics_.find({std::string(name), std::string(labels)});
  if (it == metrics_.end() || it->second.type == MetricType::kHistogram)
    return 0.0;
  return it->second.value;
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name, std::string_view labels) const {
  auto it = metrics_.find({std::string(name), std::string(labels)});
  if (it == metrics_.end() || it->second.type != MetricType::kHistogram)
    return nullptr;
  return &it->second.hist;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"homp_metrics_version\": 1,\n  \"metrics\": [";
  bool first = true;
  for (const auto& [key, m] : metrics_) {
    os << (first ? "\n" : ",\n") << R"(    {"name": ")";
    first = false;
    json_escape_into(os, key.first);
    os << R"(", "labels": ")";
    json_escape_into(os, key.second);
    os << R"(", "type": ")" << to_string(m.type) << '"';
    if (m.type == MetricType::kHistogram) {
      os << ", \"count\": " << m.hist.count()
         << ", \"sum\": " << format_number(m.hist.sum())
         << ", \"buckets\": [";
      // Cumulative counts; buckets past the last occupied one collapse
      // into the +Inf entry to keep the document small.
      int last = -1;
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        if (m.hist.bucket(i) > 0) last = i;
      }
      std::uint64_t cum = 0;
      for (int i = 0; i <= last && i < Histogram::kNumBuckets - 1; ++i) {
        cum += m.hist.bucket(i);
        if (i > 0) os << ", ";
        os << R"({"le": )" << format_number(Histogram::upper_bound(i))
           << R"(, "count": )" << cum << '}';
      }
      // A comma is due whenever any finite row was emitted above — also
      // when the last occupied bucket IS the final (+Inf-bound) one, in
      // which case every finite row printed and +Inf still follows.
      if (last >= 0) os << ", ";
      os << R"({"le": "+Inf", "count": )" << m.hist.count() << "}]";
    } else {
      os << ", \"value\": " << format_number(m.value);
    }
    os << '}';
  }
  os << "\n  ]\n}\n";
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::string last_name;
  for (const auto& [key, m] : metrics_) {
    const auto& [name, labels] = key;
    if (name != last_name) {
      os << "# TYPE " << name << ' ' << to_string(m.type) << '\n';
      last_name = name;
    }
    if (m.type == MetricType::kHistogram) {
      std::uint64_t cum = 0;
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        cum += m.hist.bucket(i);
        if (m.hist.bucket(i) == 0 && i < Histogram::kNumBuckets - 1) continue;
        const double ub = Histogram::upper_bound(i);
        os << name << "_bucket{" << labels << (labels.empty() ? "" : ",")
           << "le=\""
           << (std::isinf(ub) ? std::string("+Inf") : format_number(ub))
           << "\"} " << cum << '\n';
      }
      os << name << "_sum";
      if (!labels.empty()) os << '{' << labels << '}';
      os << ' ' << format_number(m.hist.sum()) << '\n';
      os << name << "_count";
      if (!labels.empty()) os << '{' << labels << '}';
      os << ' ' << m.hist.count() << '\n';
    } else {
      os << name;
      if (!labels.empty()) os << '{' << labels << '}';
      os << ' ' << format_number(m.value) << '\n';
    }
  }
}

}  // namespace homp::obs
