#ifndef HOMP_OBS_METRIC_NAMES_H
#define HOMP_OBS_METRIC_NAMES_H

/// \file metric_names.h
/// Canonical metric-name catalog (docs/OBSERVABILITY.md carries the
/// prose description of each). Exporters register metrics under these
/// names only — homp-lint HL005 flags any constant declared here that
/// no exporter references (a dead metric that would silently vanish
/// from dashboards).

namespace homp::obs::names {

// ---- offload-level -------------------------------------------------------
inline constexpr char kOffloads[] = "homp_offloads_total";
inline constexpr char kOffloadSeconds[] = "homp_offload_virtual_seconds_total";
inline constexpr char kOffloadTime[] = "homp_offload_seconds";
inline constexpr char kChunksIssued[] = "homp_chunks_issued_total";
inline constexpr char kImbalancePct[] = "homp_imbalance_percent";
inline constexpr char kAlgorithmRuns[] = "homp_algorithm_runs_total";
inline constexpr char kDegradedRuns[] = "homp_degraded_runs_total";
inline constexpr char kDecisions[] = "homp_sched_decisions_total";

// ---- per-device pipeline -------------------------------------------------
inline constexpr char kDeviceChunks[] = "homp_device_chunks_total";
inline constexpr char kDeviceIterations[] = "homp_device_iterations_total";
inline constexpr char kDeviceBytesIn[] = "homp_device_bytes_in_total";
inline constexpr char kDeviceBytesOut[] = "homp_device_bytes_out_total";
inline constexpr char kDevicePhaseSeconds[] = "homp_device_phase_seconds_total";
inline constexpr char kDeviceFinishTime[] = "homp_device_finish_seconds";
inline constexpr char kDeviceChunkSeconds[] = "homp_device_chunk_seconds";

// ---- per-device resilience ----------------------------------------------
inline constexpr char kDeviceFaults[] = "homp_device_faults_total";
inline constexpr char kDeviceRetries[] = "homp_device_retries_total";
inline constexpr char kDeviceRequeuedIters[] =
    "homp_device_requeued_iterations_total";
inline constexpr char kDeviceTardy[] = "homp_device_tardy_chunks_total";
inline constexpr char kDeviceSpecRun[] = "homp_device_spec_copies_run_total";
inline constexpr char kDeviceSpecWon[] = "homp_device_spec_copies_won_total";
inline constexpr char kDeviceProbes[] = "homp_device_probe_chunks_total";
inline constexpr char kDeviceReadmissions[] =
    "homp_device_readmissions_total";
inline constexpr char kDeviceQuarantines[] = "homp_device_quarantines_total";

// ---- per-device integrity ------------------------------------------------
inline constexpr char kDeviceCorruptions[] =
    "homp_device_corruptions_injected_total";
inline constexpr char kDeviceIntegrityChecks[] =
    "homp_device_integrity_checks_total";
inline constexpr char kDeviceIntegrityFailures[] =
    "homp_device_integrity_failures_total";
inline constexpr char kDeviceReexecutions[] =
    "homp_device_integrity_reexecutions_total";
inline constexpr char kDeviceVoteRounds[] = "homp_device_vote_rounds_total";

// ---- per-device model-accuracy (docs/OBSERVABILITY.md) -------------------
inline constexpr char kModel1RelError[] = "homp_model1_mean_rel_error";
inline constexpr char kModel2RelError[] = "homp_model2_mean_rel_error";
inline constexpr char kProfileRelError[] = "homp_profile_mean_rel_error";
// Advisor inputs: sample counts qualify the means above (a mean over 2
// chunks is anecdote, over 200 it is evidence), the extrema expose
// outlier-vs-systematic error shape. Extrema gauges hold -1 until the
// first sample.
inline constexpr char kModelSamples[] = "homp_model_prediction_samples";
inline constexpr char kProfileSamples[] = "homp_profile_prediction_samples";
inline constexpr char kModel1ErrorMin[] = "homp_model1_rel_error_min";
inline constexpr char kModel1ErrorMax[] = "homp_model1_rel_error_max";
inline constexpr char kModel2ErrorMin[] = "homp_model2_rel_error_min";
inline constexpr char kModel2ErrorMax[] = "homp_model2_rel_error_max";
inline constexpr char kProfileErrorMin[] = "homp_profile_rel_error_min";
inline constexpr char kProfileErrorMax[] = "homp_profile_rel_error_max";

// ---- multi-tenant serving (docs/SERVING.md) ------------------------------
inline constexpr char kServeSubmitted[] = "homp_serve_submitted_total";
inline constexpr char kServeAdmitted[] = "homp_serve_admitted_total";
inline constexpr char kServeRejected[] = "homp_serve_rejected_total";
inline constexpr char kServeBlocked[] = "homp_serve_blocked_total";
inline constexpr char kServeCompleted[] = "homp_serve_completed_total";
inline constexpr char kServeFailed[] = "homp_serve_failed_total";
inline constexpr char kServeIterations[] = "homp_serve_iterations_total";
inline constexpr char kServeLatency[] = "homp_serve_job_latency_seconds";
inline constexpr char kServeQueueWait[] = "homp_serve_queue_wait_seconds";
inline constexpr char kServeSpecShed[] = "homp_serve_speculation_shed_total";
inline constexpr char kServeShedLevel[] = "homp_serve_shed_level";
inline constexpr char kServeShedTransitions[] =
    "homp_serve_shed_transitions_total";
inline constexpr char kServeViolations[] = "homp_serve_violations_total";
inline constexpr char kServeCancelled[] = "homp_serve_cancelled_total";
inline constexpr char kServeBreakerTrips[] =
    "homp_serve_breaker_trips_total";

}  // namespace homp::obs::names

#endif  // HOMP_OBS_METRIC_NAMES_H
