#include "pragma/parse.h"

#include <cctype>

#include "common/error.h"
#include "common/strings.h"
#include "sched/algorithm.h"

namespace homp::pragma {

namespace {

/// One clause: a keyword plus optional parenthesized argument text.
struct Clause {
  std::string name;
  std::string args;
  bool has_args = false;
  std::size_t offset = 0;  // into the directive string, for diagnostics
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Split a directive into clauses, honouring nested parentheses/brackets.
std::vector<Clause> lex_clauses(const std::string& text) {
  std::vector<Clause> out;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    if (std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
      continue;
    }
    if (!ident_char(text[i])) {
      throw ParseError("unexpected character '" + std::string(1, text[i]) +
                           "' in directive",
                       i);
    }
    Clause c;
    c.offset = i;
    while (i < n && ident_char(text[i])) c.name += text[i++];
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i < n && text[i] == '(') {
      int depth = 0;
      const std::size_t start = ++i;
      ++depth;
      while (i < n && depth > 0) {
        if (text[i] == '(' || text[i] == '[') ++depth;
        if (text[i] == ')' || text[i] == ']') --depth;
        ++i;
      }
      if (depth != 0) throw ParseError("unbalanced parentheses", c.offset);
      c.args = text.substr(start, i - start - 1);
      c.has_args = true;
    }
    out.push_back(std::move(c));
  }
  return out;
}

mem::MapDirection direction_from(const std::string& s, std::size_t off) {
  if (iequals(s, "to")) return mem::MapDirection::kTo;
  if (iequals(s, "from")) return mem::MapDirection::kFrom;
  if (iequals(s, "tofrom")) return mem::MapDirection::kToFrom;
  if (iequals(s, "alloc")) return mem::MapDirection::kAlloc;
  throw ParseError("unknown map direction '" + s + "'", off);
}

/// Parse one mapped item: name, optional [lo:len]... sections, optional
/// partition(...) and halo(...).
ParsedMapEntry parse_map_item(const std::string& item, std::size_t off) {
  ParsedMapEntry e;
  std::size_t i = 0;
  const std::size_t n = item.size();
  while (i < n && std::isspace(static_cast<unsigned char>(item[i]))) ++i;
  while (i < n && ident_char(item[i])) e.name += item[i++];
  if (e.name.empty()) {
    throw ParseError("expected a variable name in map clause", off);
  }
  // Array sections.
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(item[i]))) ++i;
    if (i >= n || item[i] != '[') break;
    const std::size_t start = ++i;
    int depth = 1;
    while (i < n && depth > 0) {
      if (item[i] == '[') ++depth;
      if (item[i] == ']') --depth;
      ++i;
    }
    if (depth != 0) throw ParseError("unbalanced '[' in array section", off);
    const std::string body = item.substr(start, i - start - 1);
    auto parts = split_top_level(body, ':');
    if (parts.size() != 2 || parts[0].empty() || parts[1].empty()) {
      throw ParseError("array section must be [lower:length], got [" + body +
                           "]",
                       off);
    }
    e.sections.emplace_back(parts[0], parts[1]);
  }
  e.is_scalar = e.sections.empty();

  // Trailing modifiers: partition(...) and halo(...).
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(item[i]))) ++i;
    if (i >= n) break;
    std::string word;
    const std::size_t word_off = off + i;
    while (i < n && ident_char(item[i])) word += item[i++];
    while (i < n && std::isspace(static_cast<unsigned char>(item[i]))) ++i;
    if (i >= n || item[i] != '(') {
      throw ParseError("unexpected token '" + word + "' after map item",
                       word_off);
    }
    int depth = 1;
    const std::size_t start = ++i;
    while (i < n && depth > 0) {
      if (item[i] == '(' || item[i] == '[') ++depth;
      if (item[i] == ')' || item[i] == ']') --depth;
      ++i;
    }
    if (depth != 0) throw ParseError("unbalanced '(' after " + word, word_off);
    const std::string args = item.substr(start, i - start - 1);

    if (iequals(word, "partition")) {
      if (e.is_scalar) {
        throw ParseError("scalar '" + e.name + "' cannot take partition()",
                         word_off);
      }
      for (auto& piece : split_top_level(args, ',')) {
        // The paper brackets per-dimension policies: partition([BLOCK]) or
        // partition([ALIGN(loop1)], FULL). Strip one bracket layer.
        std::string_view v = trim(piece);
        if (!v.empty() && v.front() == '[' && v.back() == ']') {
          v = trim(v.substr(1, v.size() - 2));
        }
        e.partition.push_back(dist::parse_dim_policy(std::string(v)));
      }
      if (e.partition.size() != e.sections.size()) {
        throw ParseError("partition() of '" + e.name + "' gives " +
                             std::to_string(e.partition.size()) +
                             " policies for " +
                             std::to_string(e.sections.size()) +
                             " dimensions",
                         word_off);
      }
    } else if (iequals(word, "halo")) {
      auto parts = split_top_level(args, ',');
      if (parts.empty() || parts.size() > 2 || parts[0].empty()) {
        throw ParseError("halo takes (before[, after])", word_off);
      }
      e.halo_before = parse_scaled_int(parts[0]);
      // halo(1,) — an empty or omitted second width mirrors the first.
      e.halo_after = (parts.size() == 2 && !parts[1].empty())
                         ? parse_scaled_int(parts[1])
                         : e.halo_before;
    } else {
      throw ParseError("unknown map modifier '" + word + "'", word_off);
    }
  }
  return e;
}

void parse_map_clause(const Clause& c, ParsedDirective* d) {
  auto colon = c.args.find(':');
  // Direction defaults to tofrom when omitted (OpenMP default behaviour),
  // but only if the text before a colon is not a direction keyword.
  mem::MapDirection dir = mem::MapDirection::kToFrom;
  std::string rest = c.args;
  if (colon != std::string::npos) {
    const std::string head(trim(c.args.substr(0, colon)));
    bool is_dir = iequals(head, "to") || iequals(head, "from") ||
                  iequals(head, "tofrom") || iequals(head, "alloc");
    if (is_dir) {
      dir = direction_from(head, c.offset);
      rest = c.args.substr(colon + 1);
    }
  }
  for (auto& item : split_top_level(rest, ',')) {
    if (item.empty()) {
      throw ParseError("empty item in map clause", c.offset);
    }
    ParsedMapEntry e = parse_map_item(item, c.offset);
    e.dir = dir;
    d->maps.push_back(std::move(e));
  }
}

double parse_fraction(const std::string& s, std::size_t off) {
  std::string_view v = trim(s);
  bool percent = false;
  if (!v.empty() && v.back() == '%') {
    percent = true;
    v.remove_suffix(1);
  }
  try {
    std::size_t pos = 0;
    double x = std::stod(std::string(v), &pos);
    if (pos != v.size()) throw std::invalid_argument("trailing");
    return percent ? x / 100.0 : x;
  } catch (const std::exception&) {
    throw ParseError("malformed fraction '" + s + "'", off);
  }
}

void parse_dist_schedule(const Clause& c, ParsedDirective* d) {
  auto colon = c.args.find(':');
  if (colon == std::string::npos) {
    throw ParseError(
        "dist_schedule needs a 'target:' or 'teams:' directive-name "
        "modifier",
        c.offset);
  }
  const std::string modifier(trim(c.args.substr(0, colon)));
  if (iequals(modifier, "teams")) {
    // Within-device distribution across the device's parallel units.
    const std::string tail0 = c.args.substr(colon + 1);
    std::string_view tv = trim(tail0);
    if (!tv.empty() && tv.front() == '[' && tv.back() == ']') {
      tv = trim(tv.substr(1, tv.size() - 2));
    }
    const auto pol = dist::parse_dim_policy(std::string(tv));
    if (pol.kind != dist::PolicyKind::kBlock &&
        pol.kind != dist::PolicyKind::kCyclic) {
      throw ParseError(
          "dist_schedule(teams:...) supports BLOCK or CYCLIC", c.offset);
    }
    d->teams_policy = pol.kind;
    return;
  }
  if (!iequals(modifier, "target")) {
    throw ParseError("unknown dist_schedule modifier '" + modifier + "'",
                     c.offset);
  }
  const std::string tail = c.args.substr(colon + 1);
  std::string_view v = trim(tail);
  if (!v.empty() && v.front() == '[' && v.back() == ']') {
    v = trim(v.substr(1, v.size() - 2));
  }
  const std::string body(v);
  d->has_dist_schedule = true;

  // Either a Table I policy (AUTO / BLOCK / ALIGN(x)) or — extension — a
  // Table II algorithm with optional tuning arguments.
  auto paren = body.find('(');
  const std::string head(
      trim(paren == std::string::npos ? body : body.substr(0, paren)));
  std::string args;
  if (paren != std::string::npos) {
    if (body.back() != ')') {
      throw ParseError("unbalanced '(' in dist_schedule", c.offset);
    }
    args = body.substr(paren + 1, body.size() - paren - 2);
  }

  if (iequals(head, "AUTO") || iequals(head, "BLOCK") ||
      iequals(head, "ALIGN")) {
    d->loop_policy = dist::parse_dim_policy(body);
    if (iequals(head, "BLOCK")) {
      d->sched.kind = sched::AlgorithmKind::kBlock;
      d->sched_given = true;
    }
    return;
  }
  // CYCLIC(16) is the Table I policy with an absolute block size;
  // CYCLIC(2%) is the algorithm spelling with a loop-relative block.
  if (iequals(head, "CYCLIC") && args.find('%') == std::string::npos) {
    d->loop_policy = dist::parse_dim_policy(body);
    d->sched.kind = sched::AlgorithmKind::kCyclic;
    d->sched_given = true;
    return;
  }

  // Algorithm keyword path.
  d->loop_policy = dist::DimPolicy::auto_();
  d->sched.kind = sched::algorithm_from_string(head);
  d->sched_given = true;
  auto pieces = args.empty() ? std::vector<std::string>{}
                             : split_top_level(args, ',');
  switch (d->sched.kind) {
    case sched::AlgorithmKind::kDynamic:
      if (pieces.size() > 1) {
        throw ParseError("SCHED_DYNAMIC takes at most (chunk%)", c.offset);
      }
      if (!pieces.empty()) {
        d->sched.dynamic_chunk_fraction = parse_fraction(pieces[0], c.offset);
      }
      break;
    case sched::AlgorithmKind::kGuided:
      if (pieces.size() > 1) {
        throw ParseError("SCHED_GUIDED takes at most (chunk%)", c.offset);
      }
      if (!pieces.empty()) {
        d->sched.guided_chunk_fraction = parse_fraction(pieces[0], c.offset);
      }
      break;
    case sched::AlgorithmKind::kModel1Auto:
    case sched::AlgorithmKind::kModel2Auto:
      if (pieces.size() > 1) {
        throw ParseError("model algorithms take at most (cutoff%)", c.offset);
      }
      if (!pieces.empty()) {
        d->sched.cutoff_ratio = parse_fraction(pieces[0], c.offset);
      }
      break;
    case sched::AlgorithmKind::kSchedProfileAuto:
    case sched::AlgorithmKind::kModelProfileAuto:
      if (pieces.size() > 2) {
        throw ParseError("profiling algorithms take at most (sample%, cutoff%)",
                         c.offset);
      }
      if (!pieces.empty()) {
        d->sched.sample_fraction = parse_fraction(pieces[0], c.offset);
      }
      if (pieces.size() == 2) {
        d->sched.cutoff_ratio = parse_fraction(pieces[1], c.offset);
      }
      break;
    case sched::AlgorithmKind::kCyclic:
      if (pieces.size() > 1) {
        throw ParseError("CYCLIC takes at most (block%)", c.offset);
      }
      if (!pieces.empty()) {
        d->sched.cyclic_block_fraction = parse_fraction(pieces[0], c.offset);
      }
      break;
    case sched::AlgorithmKind::kWorkStealing:
      if (pieces.size() > 1) {
        throw ParseError("WORK_STEALING takes at most (grain%)", c.offset);
      }
      if (!pieces.empty()) {
        d->sched.steal_grain_fraction = parse_fraction(pieces[0], c.offset);
      }
      break;
    case sched::AlgorithmKind::kHistoryAuto:
      if (pieces.size() > 1) {
        throw ParseError("HISTORY_AUTO takes at most (cutoff%)", c.offset);
      }
      if (!pieces.empty()) {
        d->sched.cutoff_ratio = parse_fraction(pieces[0], c.offset);
      }
      break;
    case sched::AlgorithmKind::kBlock:
      break;
  }
}

}  // namespace

long long Symbols::resolve(const std::string& raw) const {
  const std::string expr(trim(raw));
  HOMP_REQUIRE(!expr.empty(), "empty array-section expression");
  if (std::isdigit(static_cast<unsigned char>(expr[0]))) {
    return parse_scaled_int(expr);
  }
  auto it = values.find(expr);
  HOMP_REQUIRE(it != values.end(),
               "unbound symbol '" + expr + "' in array section (add it to "
               "Bindings::let)");
  return it->second;
}

ParsedDirective parse_directive(const std::string& raw) {
  std::string text(trim(raw));
  // Strip an optional "#pragma omp" prefix (and line continuations).
  for (std::size_t pos = 0; (pos = text.find('\\', pos)) != std::string::npos;) {
    text[pos] = ' ';
  }
  if (starts_with(text, "#pragma")) {
    text = std::string(trim(text.substr(7)));
  }
  if (starts_with(text, "omp")) {
    text = std::string(trim(text.substr(3)));
  }

  auto clauses = lex_clauses(text);
  HOMP_REQUIRE(!clauses.empty(), "empty directive");

  ParsedDirective d;
  bool saw_target = false;
  for (const auto& c : clauses) {
    if (iequals(c.name, "parallel")) {
      d.parallel = true;
    } else if (iequals(c.name, "target")) {
      saw_target = true;
    } else if (iequals(c.name, "data")) {
      d.kind = ParsedDirective::Kind::kTargetData;
    } else if (iequals(c.name, "for") || iequals(c.name, "distribute") ||
               iequals(c.name, "teams") || iequals(c.name, "simd")) {
      // Worksharing within a device — structure only, no multi-device
      // semantics to extract.
    } else if (iequals(c.name, "device")) {
      if (!c.has_args) throw ParseError("device needs arguments", c.offset);
      d.device_clause = c.args;
    } else if (iequals(c.name, "map")) {
      if (!c.has_args) throw ParseError("map needs arguments", c.offset);
      parse_map_clause(c, &d);
    } else if (iequals(c.name, "dist_schedule")) {
      if (!c.has_args) {
        throw ParseError("dist_schedule needs arguments", c.offset);
      }
      parse_dist_schedule(c, &d);
    } else if (iequals(c.name, "collapse")) {
      if (!c.has_args) throw ParseError("collapse needs (k)", c.offset);
      d.collapse = static_cast<int>(parse_scaled_int(c.args));
      if (d.collapse < 1) {
        throw ParseError("collapse depth must be >= 1", c.offset);
      }
    } else if (iequals(c.name, "reduction")) {
      if (!c.has_args) throw ParseError("reduction needs (+:var)", c.offset);
      auto colon = c.args.find(':');
      if (colon == std::string::npos ||
          std::string(trim(c.args.substr(0, colon))) != "+") {
        throw ParseError("only reduction(+:var) is supported", c.offset);
      }
      d.has_reduction = true;
      d.reduction_var = std::string(trim(c.args.substr(colon + 1)));
    } else if (iequals(c.name, "label")) {
      if (!c.has_args) throw ParseError("label needs (name)", c.offset);
      d.loop_label = std::string(trim(c.args));
    } else if (iequals(c.name, "halo_exchange")) {
      if (!c.has_args) {
        throw ParseError("halo_exchange needs (array)", c.offset);
      }
      d.kind = ParsedDirective::Kind::kHaloExchange;
      d.halo_array = std::string(trim(c.args));
    } else if (iequals(c.name, "shared") || iequals(c.name, "private") ||
               iequals(c.name, "firstprivate") || iequals(c.name, "num_threads")) {
      // Standard OpenMP data-sharing clauses: captured by the kernel body
      // closure in this embedding; accepted and ignored.
    } else {
      throw ParseError("unknown clause '" + c.name + "'", c.offset);
    }
  }
  // Loop-only directives (Fig. 2 line 6: "parallel for distribute
  // dist_schedule(...)") carry no target; anything that names devices or
  // maps data must be a target construct.
  if (d.kind != ParsedDirective::Kind::kHaloExchange &&
      (!d.device_clause.empty() || !d.maps.empty() ||
       (!saw_target && !d.has_dist_schedule))) {
    HOMP_REQUIRE(saw_target, "directive has no 'target' construct");
  }
  return d;
}

std::vector<int> resolve_device_clause(const std::string& clause,
                                       const mach::MachineDescriptor& m) {
  const int total = static_cast<int>(m.devices.size());
  std::vector<int> out;
  auto add = [&](int id) {
    HOMP_REQUIRE(id >= 0 && id < total,
                 "device id " + std::to_string(id) + " out of range (machine "
                 "has " +
                     std::to_string(total) + " devices)");
    for (int seen : out) {
      HOMP_REQUIRE(seen != id,
                   "device " + std::to_string(id) + " listed twice");
    }
    out.push_back(id);
  };

  for (auto& spec : split_top_level(clause, ',')) {
    HOMP_REQUIRE(!spec.empty(), "empty device specifier");
    auto fields = split(spec, ':');
    HOMP_REQUIRE(fields.size() <= 3,
                 "device specifier has too many fields: '" + spec + "'");
    // Bare "*" is shorthand for 0:*.
    int initial = 0;
    std::string nums = "1";
    std::string filter;
    if (fields[0] == "*") {
      HOMP_REQUIRE(fields.size() == 1, "'*' takes no further fields");
      nums = "*";
    } else {
      initial = static_cast<int>(parse_scaled_int(fields[0]));
      if (fields.size() >= 2) nums = fields[1].empty() ? "*" : fields[1];
      if (fields.size() == 3) filter = fields[2];
    }

    const bool all = nums == "*";
    const long long want = all ? -1 : parse_scaled_int(nums);
    HOMP_REQUIRE(all || want >= 1,
                 "device count must be >= 1 in '" + spec + "'");
    long long taken = 0;
    for (int id = initial; id < total; ++id) {
      if (!filter.empty() &&
          m.devices[static_cast<std::size_t>(id)].type !=
              mach::device_type_from_string(filter)) {
        continue;
      }
      add(id);
      if (!all && ++taken == want) break;
    }
    if (!all) {
      HOMP_REQUIRE(taken == want,
                   "device specifier '" + spec + "' asked for " +
                       std::to_string(want) + " devices but only " +
                       std::to_string(taken) + " matched");
    }
  }
  HOMP_REQUIRE(!out.empty(), "device clause selects no devices");
  return out;
}

std::vector<mem::MapSpec> build_map_specs(const ParsedDirective& d,
                                          const Bindings& b) {
  std::vector<mem::MapSpec> out;
  for (const auto& e : d.maps) {
    if (e.is_scalar) continue;  // scalars travel by value with the body
    auto it = b.arrays.find(e.name);
    HOMP_REQUIRE(it != b.arrays.end(),
                 "no storage bound for mapped array '" + e.name + "'");
    mem::MapSpec s;
    s.name = e.name;
    s.dir = e.dir;
    s.binding = it->second;
    HOMP_REQUIRE(e.sections.size() == s.binding.rank(),
                 "array section rank of '" + e.name +
                     "' does not match bound storage");
    std::vector<dist::Range> dims;
    for (const auto& [lo_expr, len_expr] : e.sections) {
      const long long lo = b.symbols.resolve(lo_expr);
      const long long len = b.symbols.resolve(len_expr);
      HOMP_REQUIRE(lo >= 0 && len >= 0,
                   "negative array section on '" + e.name + "'");
      dims.emplace_back(lo, lo + len);
    }
    s.region = dist::Region(std::move(dims));
    s.partition = e.partition;
    s.halo_before = e.halo_before;
    s.halo_after = e.halo_after;
    s.validate();
    out.push_back(std::move(s));
  }
  return out;
}

rt::OffloadOptions to_offload_options(const ParsedDirective& d,
                                      const mach::MachineDescriptor& m) {
  HOMP_REQUIRE(d.kind == ParsedDirective::Kind::kTarget,
               "to_offload_options expects a target directive");
  HOMP_REQUIRE(!d.device_clause.empty(),
               "target directive has no device(...) clause");
  rt::OffloadOptions o;
  o.device_ids = resolve_device_clause(d.device_clause, m);
  o.loop_policy = d.loop_policy;
  o.loop_label = d.loop_label;
  o.teams_policy = d.teams_policy;
  o.parallel_offload = d.parallel;
  if (d.sched_given) {
    o.sched = d.sched;
  } else if (d.loop_policy.kind == dist::PolicyKind::kAuto) {
    o.auto_select_algorithm = true;  // plain AUTO: heuristic selection
  }
  return o;
}

}  // namespace homp::pragma
