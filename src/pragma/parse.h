#ifndef HOMP_PRAGMA_PARSE_H
#define HOMP_PRAGMA_PARSE_H

/// \file parse.h
/// Front-end for the HOMP directive syntax of §III. In the paper these
/// pragmas are lowered by a ROSE-based source-to-source compiler; here the
/// same clause grammar is parsed from strings at runtime and bound to
/// arrays/scalars through an explicit Bindings table (DESIGN.md §2).
///
/// Supported directives (leading "#pragma omp" optional):
///
///   [parallel] target [data] device(...) map(...)...
///       [distribute] [dist_schedule(target: ...)] [collapse(k)]
///       [reduction(+:var)] [label(loop1)]
///   halo_exchange(array)
///
/// Clause grammar highlights:
///   device(0:*), device(0,2,3,5), device(0:2,4:2),
///       device(0:*:HOMP_DEVICE_NVGPU)
///   map(tofrom: y[0:n] partition([BLOCK]), a, n)
///   map(to: f[0:n][0:m] partition([ALIGN(loop1)], FULL) halo(1,))
///   dist_schedule(target:[AUTO]) | dist_schedule(target:[ALIGN(x)])
///     | dist_schedule(target: SCHED_DYNAMIC(2%))      (extension)

#include <map>
#include <string>
#include <vector>

#include "dist/policy.h"
#include "machine/device.h"
#include "memory/map_spec.h"
#include "runtime/options.h"

namespace homp::pragma {

/// Values for symbolic array-section bounds (the n, m in y[0:n]).
struct Symbols {
  std::map<std::string, long long> values;

  long long resolve(const std::string& expr) const;
};

struct ParsedMapEntry {
  mem::MapDirection dir = mem::MapDirection::kTo;
  std::string name;
  bool is_scalar = false;
  /// Array sections as (lower, length) expression strings, one per dim.
  std::vector<std::pair<std::string, std::string>> sections;
  std::vector<dist::DimPolicy> partition;
  long long halo_before = 0;
  long long halo_after = 0;
};

struct ParsedDirective {
  enum class Kind { kTarget, kTargetData, kHaloExchange };
  Kind kind = Kind::kTarget;

  bool parallel = false;  ///< the `parallel target` composite (§III-4)
  std::string device_clause;
  std::vector<ParsedMapEntry> maps;

  bool has_dist_schedule = false;
  dist::DimPolicy loop_policy = dist::DimPolicy::auto_();

  /// dist_schedule(teams:[...]) — within-device distribution (BLOCK or
  /// CYCLIC).
  dist::PolicyKind teams_policy = dist::PolicyKind::kBlock;
  sched::SchedulerConfig sched;  ///< when an algorithm name was given
  bool sched_given = false;

  int collapse = 1;
  bool has_reduction = false;
  std::string reduction_var;
  std::string loop_label = "loop";
  std::string halo_array;  ///< for Kind::kHaloExchange
};

/// Parse one directive string. Throws ParseError on malformed input.
ParsedDirective parse_directive(const std::string& text);

/// Resolve a device clause against a machine: "0:*", "0,2,3,5", "0:2,4:2",
/// "0:*:HOMP_DEVICE_NVGPU", "*" (shorthand for 0:*). Throws ConfigError on
/// out-of-range ids or empty results.
std::vector<int> resolve_device_clause(const std::string& clause,
                                       const mach::MachineDescriptor& m);

/// Storage bindings for the parsed map entries.
struct Bindings {
  std::map<std::string, mem::ArrayBinding> arrays;
  Symbols symbols;

  template <typename T>
  void bind(const std::string& name, mem::HostArray<T>& a) {
    arrays[name] = mem::bind_array(a);
  }
  void let(const std::string& name, long long value) {
    symbols.values[name] = value;
  }
};

/// Materialize MapSpecs from the directive's map clauses (scalars are
/// skipped — they travel by value with the kernel).
std::vector<mem::MapSpec> build_map_specs(const ParsedDirective& d,
                                          const Bindings& b);

/// Derive OffloadOptions (device list, loop policy, scheduler config,
/// label, parallel flag) from a parsed target directive.
rt::OffloadOptions to_offload_options(const ParsedDirective& d,
                                      const mach::MachineDescriptor& m);

}  // namespace homp::pragma

#endif  // HOMP_PRAGMA_PARSE_H
