#ifndef HOMP_ADVISE_ATTRIBUTION_H
#define HOMP_ADVISE_ATTRIBUTION_H

/// \file attribution.h
/// The attribution engine: joins a Session's decision audits,
/// per-device PredictionErrorStats, trace overlap evidence, serve
/// audits, and merged metrics into ranked Inspection findings — each
/// with the evidence trail, an estimated virtual-time saving, and a
/// concrete knob to turn.
///
/// Every formula is deterministic arithmetic over the session
/// (docs/OBSERVABILITY.md "Inspection catalog" documents each one), so
/// the same artifact files always produce byte-identical reports. That
/// property is what lets the CI perf sentinel diff advisor output
/// across commits.

#include <string>
#include <vector>

#include "advise/session.h"

namespace homp::advise {

/// One finding. `kind` and `severity` take values from
/// advise/report_keys.h; (kind, device, tenant) is the merge identity
/// across runs of a session.
struct Inspection {
  std::string kind;
  std::string severity;
  std::string device;  ///< empty for run-wide findings
  std::string tenant;  ///< serve findings only
  double saving_s = 0.0;  ///< estimated virtual-time saving (mean per run)
  std::string evidence;   ///< human-readable evidence trail
  std::string knob;       ///< the concrete knob to turn
  std::size_t runs_present = 0;  ///< runs of the session that fired this
  std::size_t runs_total = 0;    ///< runs eligible to fire it
  bool persistent = false;       ///< fired in every eligible run
};

/// Attribution thresholds. Defaults match docs/OBSERVABILITY.md; the
/// CLI exposes --bias-threshold.
struct AttributionOptions {
  /// Under-prediction fires at bias >= this; over-prediction at
  /// bias <= 1/this, where bias = sum(actual)/sum(model2) per device.
  double bias_threshold = 1.5;
  /// Overlap deficit fires when exposed transfer exceeds this fraction
  /// of the device's total transfer time...
  double overlap_exposed_ratio = 0.25;
  /// ...and at least this fraction of the makespan.
  double overlap_makespan_ratio = 0.01;
  /// Findings saving at least this fraction of the makespan are
  /// severity-critical.
  double critical_makespan_ratio = 0.10;
  /// actuals_coverage fires when more than this fraction of assigned
  /// chunks never got an actual backfilled.
  double coverage_missing_ratio = 0.50;
};

/// Rank of a severity string for sorting (critical > warning > info).
int severity_rank(const std::string& severity) noexcept;

/// Run the attribution engine over the whole session. Findings are
/// merged across runs by (kind, device, tenant) — saving is the mean
/// over the runs that fired, evidence says "persistent across k/N
/// runs" — and ranked by (saving desc, severity desc, kind, device,
/// tenant).
std::vector<Inspection> attribute(const Session& session,
                                  const AttributionOptions& opt = {});

}  // namespace homp::advise

#endif  // HOMP_ADVISE_ATTRIBUTION_H
