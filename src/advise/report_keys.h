#ifndef HOMP_ADVISE_REPORT_KEYS_H
#define HOMP_ADVISE_REPORT_KEYS_H

/// \file report_keys.h
/// The rostered string constants of the advisor's public vocabulary:
/// finding kinds, severities, and the stable keys of the JSON report.
///
/// Everything the advisor prints that a consumer might match against
/// (CI scripts grepping `homp-advise report --json`, the perf sentinel,
/// tests asserting exact findings) lives here — never as inline string
/// literals at the emission site. homp-lint HL005 enforces the roster:
/// each constant below must be referenced by the attribution or report
/// code, and emission sites must use the constant.

namespace homp::advise {

// ---- finding kinds ------------------------------------------------------
// One constant per Inspection kind; values are the stable identifiers in
// report JSON and the merge key across runs. docs/OBSERVABILITY.md
// "Inspection catalog" documents the semantics and formulas.

/// Device ran slower than MODEL_2 predicted: bias >= threshold.
inline constexpr char kKindUnderPrediction[] = "under_prediction";
/// Device ran faster than predicted: bias <= 1/threshold (capacity left
/// on the table when chunk sizing trusted the model).
inline constexpr char kKindOverPrediction[] = "over_prediction";
/// CUTOFF dropped a device whose pre-drop share says it would have
/// carried useful work.
inline constexpr char kKindCutoffDropRegret[] = "cutoff_drop_regret";
/// Speculative duplicate chunks that ran but lost the race.
inline constexpr char kKindSpeculationWaste[] = "speculation_waste";
/// One device finishes well after the rest and gates the makespan.
inline constexpr char kKindCriticalPathBlame[] = "critical_path_blame";
/// Transfer time not hidden behind compute (trace evidence).
inline constexpr char kKindOverlapDeficit[] = "overlap_deficit";
/// Too many decisions lack a backfilled actual to attribute reliably.
inline constexpr char kKindActualsCoverage[] = "actuals_coverage";
/// Serving: virtual time spent at shed level >= 1.
inline constexpr char kKindShedPressure[] = "shed_pressure";
/// Serving: a tenant's circuit breaker opened repeatedly.
inline constexpr char kKindBreakerFlap[] = "breaker_flap";

// ---- severities ---------------------------------------------------------

inline constexpr char kSeverityCritical[] = "critical";
inline constexpr char kSeverityWarning[] = "warning";
inline constexpr char kSeverityInfo[] = "info";

// ---- JSON report keys ---------------------------------------------------

/// Version key of `homp-advise report --json` output.
inline constexpr char kReportVersionKey[] = "homp_advise_version";
/// Version key of `homp-advise diff --json` output.
inline constexpr char kDiffVersionKey[] = "homp_advise_diff_version";
/// Array of finding objects, ranked by estimated saving.
inline constexpr char kFindingsKey[] = "findings";
/// Array of regression objects in a diff verdict.
inline constexpr char kRegressionsKey[] = "regressions";
/// Array of non-regression changes in a diff verdict.
inline constexpr char kChangesKey[] = "changes";

}  // namespace homp::advise

#endif  // HOMP_ADVISE_REPORT_KEYS_H
