#include "advise/attribution.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "advise/report_keys.h"
#include "obs/metric_names.h"

namespace homp::advise {

namespace {

/// Compact deterministic rendering for evidence prose (not meant to
/// round-trip; report JSON re-renders savings with the %.17g rule).
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string fmt_ll(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

/// One run's findings before cross-run merging.
struct RawFinding {
  Inspection ins;  ///< runs_present/runs_total/persistent filled later
};

/// Session-level corroboration: cite the merged metrics registry when it
/// carries model-accuracy telemetry for this device.
void corroborate(const Session& s, const std::string& device,
                 std::string& evidence) {
  namespace names = obs::names;
  const std::string lbl = "device=\"" + device + "\"";
  if (s.metrics.value(names::kModelSamples, lbl) > 0.0) {
    evidence += "; session metrics: model2 mean rel-error " +
                fmt(s.metrics.value(names::kModel2RelError, lbl)) + " over " +
                fmt(s.metrics.value(names::kModelSamples, lbl)) + " samples";
  }
}

/// Per-device prediction bias over one run's decision stream:
/// sum(actual) / sum(model2) across chunk-assigned decisions that have
/// both. Returns false when the run carries no such evidence for the
/// device.
bool device_bias(const RunAudit& run, const std::string& device, double& bias,
                 long long& samples) {
  double actual = 0.0, predicted = 0.0;
  long long n = 0;
  for (const AuditDecision& d : run.decisions) {
    if (d.kind != "chunk-assigned" || d.device != device) continue;
    if (d.actual_s <= 0.0 || d.model2_s <= 0.0) continue;
    actual += d.actual_s;
    predicted += d.model2_s;
    ++n;
  }
  if (n == 0 || predicted <= 0.0) return false;
  bias = actual / predicted;
  samples = n;
  return true;
}

void attribute_run(const Session& s, const RunAudit& run,
                   const AttributionOptions& opt,
                   std::vector<RawFinding>& out) {
  const double makespan = run.total_time_s;

  // Participating devices and their finish times.
  std::vector<const AuditDevice*> active;
  for (const AuditDevice& d : run.devices) {
    if (d.chunks > 0) active.push_back(&d);
  }

  auto severity_for = [&](double saving) {
    return makespan > 0.0 && saving >= opt.critical_makespan_ratio * makespan
               ? kSeverityCritical
               : kSeverityWarning;
  };

  // --- prediction bias: under_prediction / over_prediction ---------------
  for (const AuditDevice* d : active) {
    double bias = 0.0;
    long long samples = 0;
    if (!device_bias(run, d->name, bias, samples)) continue;

    // Mean finish of the *other* participating devices: the time the
    // rest of the machine was done while this one kept running.
    double others = 0.0;
    int n_others = 0;
    for (const AuditDevice* o : active) {
      if (o == d) continue;
      others += o->finish_time_s;
      ++n_others;
    }
    const double mean_others = n_others > 0 ? others / n_others : 0.0;

    if (bias >= opt.bias_threshold) {
      RawFinding f;
      f.ins.kind = kKindUnderPrediction;
      f.ins.device = d->name;
      f.ins.saving_s = std::max(0.0, d->finish_time_s - mean_others);
      f.ins.severity = severity_for(f.ins.saving_s);
      f.ins.evidence = "ran " + fmt(bias) +
                       "x slower than MODEL_2 predicted over " +
                       fmt_ll(samples) + " chunks; finished at " +
                       fmt(d->finish_time_s) + "s vs " + fmt(mean_others) +
                       "s mean of the other devices";
      if (run.degraded) f.ins.evidence += "; run flagged degraded";
      corroborate(s, d->name, f.ins.evidence);
      f.ins.knob = "re-profile " + d->name +
                   " (its throughput history is stale) or switch to a "
                   "guided/dynamic schedule so the EWMA corrects mid-run";
      out.push_back(std::move(f));
    } else if (bias <= 1.0 / opt.bias_threshold) {
      RawFinding f;
      f.ins.kind = kKindOverPrediction;
      f.ins.device = d->name;
      f.ins.saving_s =
          std::max(0.0, makespan - d->finish_time_s) * (1.0 - bias);
      f.ins.severity = f.ins.saving_s >= opt.critical_makespan_ratio * makespan
                           ? kSeverityWarning
                           : kSeverityInfo;
      f.ins.evidence = "ran " + fmt(1.0 / bias) +
                       "x faster than MODEL_2 predicted over " +
                       fmt_ll(samples) + " chunks; idle after " +
                       fmt(d->finish_time_s) + "s of a " + fmt(makespan) +
                       "s run";
      corroborate(s, d->name, f.ins.evidence);
      f.ins.knob = "raise " + d->name +
                   "'s share (model is pessimistic): re-profile it or lower "
                   "its modelled transfer cost";
      out.push_back(std::move(f));
    }
  }

  // --- CUTOFF drop regret ------------------------------------------------
  if (run.has_cutoff) {
    for (std::size_t i = 0; i < run.cutoff_selected.size(); ++i) {
      if (run.cutoff_selected[i] != 0) continue;
      const double pre_w =
          i < run.cutoff_pre_weights.size() ? run.cutoff_pre_weights[i] : 0.0;
      if (pre_w <= 0.0) continue;
      const std::string name = i < run.devices.size()
                                   ? run.devices[i].name
                                   : "slot " + fmt_ll((long long)i);
      // If the session holds bias evidence for the dropped device (from
      // another run where it did participate), correct the modelled
      // share by it: an optimistic model inflates regret.
      double c = 1.0;
      bool have_bias = false;
      for (const RunAudit& other : s.runs) {
        double b = 0.0;
        long long n = 0;
        if (device_bias(other, name, b, n) && b > 0.0) {
          c = std::min(4.0, std::max(0.25, 1.0 / b));
          have_bias = true;
          break;
        }
      }
      RawFinding f;
      f.ins.kind = kKindCutoffDropRegret;
      f.ins.device = name;
      f.ins.saving_s = makespan * pre_w * c;
      f.ins.severity = have_bias && c < 1.0 ? kSeverityInfo : kSeverityWarning;
      f.ins.evidence = "CUTOFF dropped " + name +
                       " holding a pre-drop share of " + fmt(pre_w) +
                       (have_bias
                            ? "; bias-corrected contribution factor " + fmt(c)
                            : "; no bias evidence for the dropped device");
      f.ins.knob =
          "lower the cutoff ratio (keep " + name +
          ") or re-profile it so the pre-drop weights reflect reality";
      out.push_back(std::move(f));
    }
  }

  // --- speculation waste -------------------------------------------------
  for (const AuditDevice& d : run.devices) {
    const long long lost = d.spec_copies_run - d.spec_copies_won;
    if (lost <= 0) continue;
    // Mean actual chunk seconds on this device; fall back to the run
    // mean when the device has no backfilled actuals.
    double sum = 0.0;
    long long n = 0;
    for (const AuditDecision& dec : run.decisions) {
      if (dec.kind != "chunk-assigned" || dec.actual_s <= 0.0) continue;
      if (dec.device == d.name) {
        sum += dec.actual_s;
        ++n;
      }
    }
    if (n == 0) {
      for (const AuditDecision& dec : run.decisions) {
        if (dec.kind == "chunk-assigned" && dec.actual_s > 0.0) {
          sum += dec.actual_s;
          ++n;
        }
      }
    }
    if (n == 0) continue;
    const double mean_chunk = sum / n;
    RawFinding f;
    f.ins.kind = kKindSpeculationWaste;
    f.ins.device = d.name;
    f.ins.saving_s = static_cast<double>(lost) * mean_chunk;
    f.ins.severity = f.ins.saving_s >= opt.critical_makespan_ratio * makespan
                         ? kSeverityWarning
                         : kSeverityInfo;
    f.ins.evidence = fmt_ll(lost) + " of " + fmt_ll(d.spec_copies_run) +
                     " speculative copies on " + d.name +
                     " lost the race; mean chunk " + fmt(mean_chunk) + "s";
    f.ins.knob = "raise the speculation tardiness threshold or cap "
                 "speculative copies for " +
                 d.name;
    out.push_back(std::move(f));
  }

  // --- critical-path blame -----------------------------------------------
  if (active.size() >= 2) {
    const AuditDevice* worst = active[0];
    for (const AuditDevice* d : active) {
      if (d->finish_time_s > worst->finish_time_s) worst = d;
    }
    double second = 0.0;
    for (const AuditDevice* d : active) {
      if (d != worst) second = std::max(second, d->finish_time_s);
    }
    const double gap = worst->finish_time_s - second;
    if (gap > 0.0) {
      RawFinding f;
      f.ins.kind = kKindCriticalPathBlame;
      f.ins.device = worst->name;
      f.ins.saving_s = gap;
      f.ins.severity = kSeverityInfo;
      f.ins.evidence = worst->name + " gates the makespan: finished " +
                       fmt(gap) + "s after the next-latest device (" +
                       fmt(worst->finish_time_s) + "s vs " + fmt(second) +
                       "s)";
      f.ins.knob = "shift weight off " + worst->name +
                   " or use guided chunking so trailing chunks shrink";
      out.push_back(std::move(f));
    }
  }

  // --- actuals coverage ---------------------------------------------------
  long long assigned = 0, missing = 0;
  for (const AuditDecision& d : run.decisions) {
    if (d.kind != "chunk-assigned") continue;
    ++assigned;
    if (d.actual_s <= 0.0) ++missing;
  }
  if (assigned > 0 && static_cast<double>(missing) >
                          opt.coverage_missing_ratio *
                              static_cast<double>(assigned)) {
    RawFinding f;
    f.ins.kind = kKindActualsCoverage;
    f.ins.severity = kSeverityInfo;
    f.ins.evidence = fmt_ll(missing) + " of " + fmt_ll(assigned) +
                     " assigned chunks never got an actual backfilled; "
                     "bias estimates above are low-confidence";
    f.ins.knob = "let the offload run to completion with collect_audit so "
                 "every decision's actual_s backfills";
    out.push_back(std::move(f));
  }
}

void attribute_trace(const TraceEvidence& tr, const AttributionOptions& opt,
                     std::vector<RawFinding>& out) {
  for (const TraceDevice& d : tr.devices) {
    const double exposed = d.transfer_s - d.hidden_s;
    if (d.transfer_s <= 0.0) continue;
    if (exposed <= opt.overlap_exposed_ratio * d.transfer_s) continue;
    if (exposed < opt.overlap_makespan_ratio * tr.makespan_s) continue;
    RawFinding f;
    f.ins.kind = kKindOverlapDeficit;
    f.ins.device = d.name;
    f.ins.saving_s = exposed;
    f.ins.severity =
        tr.makespan_s > 0.0 &&
                exposed >= opt.critical_makespan_ratio * tr.makespan_s
            ? kSeverityWarning
            : kSeverityInfo;
    f.ins.evidence = fmt(exposed) + "s of " + fmt(d.transfer_s) +
                     "s transfer on " + d.name +
                     " ran exposed (not overlapped with its compute)";
    f.ins.knob = "deepen pipelining for " + d.name +
                 ": smaller chunks or more in-flight chunks so copy-in "
                 "hides behind compute";
    out.push_back(std::move(f));
  }
}

void attribute_serve(const ServeAudit& run, const AttributionOptions& opt,
                     std::vector<RawFinding>& out) {
  // Shed-ladder pressure: integrate virtual time spent at level >= 1.
  double pressured = 0.0;
  int level = 0;
  double since = 0.0;
  int peak = 0;
  for (const ServeAuditEvent& e : run.events) {
    if (e.kind != "shed-level") continue;
    // detail carries "L_old -> L_new".
    const std::size_t arrow = e.detail.find("-> ");
    const int next =
        arrow == std::string::npos
            ? 0
            : std::atoi(e.detail.c_str() + arrow + 3);
    if (level == 0 && next > 0) since = e.time_s;
    if (level > 0 && next == 0) pressured += e.time_s - since;
    level = next;
    peak = std::max(peak, next);
  }
  if (level > 0) pressured += run.makespan_s - since;
  if (pressured > 0.0) {
    long long shed_rejects = 0;
    for (const ServeTenantRow& t : run.tenants) {
      shed_rejects += t.rejected_shed;
    }
    RawFinding f;
    f.ins.kind = kKindShedPressure;
    f.ins.saving_s = pressured;
    f.ins.severity =
        run.makespan_s > 0.0 && pressured >= 0.25 * run.makespan_s
            ? kSeverityWarning
            : kSeverityInfo;
    f.ins.evidence = fmt(pressured) + "s of a " + fmt(run.makespan_s) +
                     "s run at shed level >= 1 (peak " + fmt_ll(peak) +
                     ", " + fmt_ll((long long)run.shed_transitions) +
                     " transitions, " + fmt_ll(shed_rejects) +
                     " shed rejections)";
    f.ins.knob = "raise queue capacity or device count, or rate-limit the "
                 "heaviest tenant before the ladder engages";
    out.push_back(std::move(f));
  }
  (void)opt;

  // Per-tenant breaker flapping.
  for (const ServeTenantRow& t : run.tenants) {
    long long opens = 0;
    for (const ServeAuditEvent& e : run.events) {
      if (e.kind == "breaker-open" && e.tenant == t.name) ++opens;
    }
    if (opens == 0) continue;
    RawFinding f;
    f.ins.kind = kKindBreakerFlap;
    f.ins.tenant = t.name;
    f.ins.severity = opens >= 2 ? kSeverityWarning : kSeverityInfo;
    f.ins.evidence = "circuit breaker for tenant " + t.name + " opened " +
                     fmt_ll(opens) + "x (" + fmt_ll(t.failed) +
                     " failed, " + fmt_ll(t.rejected_breaker) +
                     " rejected while open)";
    f.ins.knob = "fix tenant " + t.name +
                 "'s failing jobs or lengthen the breaker cooldown so "
                 "probes stop churning admission";
    out.push_back(std::move(f));
  }
}

}  // namespace

int severity_rank(const std::string& severity) noexcept {
  if (severity == kSeverityCritical) return 3;
  if (severity == kSeverityWarning) return 2;
  if (severity == kSeverityInfo) return 1;
  return 0;
}

std::vector<Inspection> attribute(const Session& session,
                                  const AttributionOptions& opt) {
  std::vector<RawFinding> raw;
  for (const RunAudit& run : session.runs) {
    attribute_run(session, run, opt, raw);
  }
  for (const TraceEvidence& tr : session.traces) {
    attribute_trace(tr, opt, raw);
  }
  for (const ServeAudit& run : session.serve_runs) {
    attribute_serve(run, opt, raw);
  }

  // Merge by (kind, device, tenant): saving is the mean over runs that
  // fired; severity is the worst observed; evidence comes from the first
  // firing plus a persistence note.
  struct Merged {
    Inspection ins;
    double saving_sum = 0.0;
  };
  std::map<std::string, Merged> merged;  // ordered -> deterministic
  std::vector<std::string> order;        // first-seen order for evidence
  for (RawFinding& f : raw) {
    const std::string key =
        f.ins.kind + '\0' + f.ins.device + '\0' + f.ins.tenant;
    auto it = merged.find(key);
    if (it == merged.end()) {
      Merged m;
      m.ins = f.ins;
      m.ins.runs_present = 1;
      m.saving_sum = f.ins.saving_s;
      merged.emplace(key, std::move(m));
      order.push_back(key);
    } else {
      Merged& m = it->second;
      m.saving_sum += f.ins.saving_s;
      ++m.ins.runs_present;
      if (severity_rank(f.ins.severity) > severity_rank(m.ins.severity)) {
        m.ins.severity = f.ins.severity;
      }
    }
  }

  std::vector<Inspection> out;
  for (auto& [key, m] : merged) {
    Inspection& ins = m.ins;
    // Eligible-run count depends on the finding's evidence source.
    if (ins.kind == kKindOverlapDeficit) {
      ins.runs_total = session.traces.size();
    } else if (ins.kind == kKindShedPressure ||
               ins.kind == kKindBreakerFlap) {
      ins.runs_total = session.serve_runs.size();
    } else {
      ins.runs_total = session.runs.size();
    }
    ins.saving_s = ins.runs_present > 0
                       ? m.saving_sum / static_cast<double>(ins.runs_present)
                       : 0.0;
    ins.persistent = ins.runs_total > 0 && ins.runs_present == ins.runs_total;
    if (ins.runs_total > 1) {
      ins.evidence += ins.persistent
                          ? "; persistent across " +
                                fmt_ll((long long)ins.runs_total) + " runs"
                          : "; seen in " +
                                fmt_ll((long long)ins.runs_present) + " of " +
                                fmt_ll((long long)ins.runs_total) + " runs";
    }
    out.push_back(std::move(ins));
  }

  std::sort(out.begin(), out.end(), [](const Inspection& a,
                                       const Inspection& b) {
    if (a.saving_s != b.saving_s) return a.saving_s > b.saving_s;
    const int ra = severity_rank(a.severity), rb = severity_rank(b.severity);
    if (ra != rb) return ra > rb;
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.device != b.device) return a.device < b.device;
    return a.tenant < b.tenant;
  });
  return out;
}

}  // namespace homp::advise
