#ifndef HOMP_ADVISE_JSON_H
#define HOMP_ADVISE_JSON_H

/// \file json.h
/// Minimal recursive-descent JSON reader for the offline advisor.
///
/// The advisor consumes only artifacts HOMP itself wrote (decision
/// audits, metrics registries, chrome traces, serve audits, bench
/// records), so this parser targets exactly that dialect: objects,
/// arrays, strings with \uXXXX escapes, numbers via strtod, true/false/
/// null. Object members keep their document order — the advisor's
/// re-export paths depend on it for byte-identical output — and lookup
/// is linear, which is fine at audit sizes (thousands of members).
///
/// Errors raise homp::ParseError with the byte offset, the same type the
/// pragma front end uses, so CLI surfaces map every malformed input to
/// one exit-2 path.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace homp::advise {

/// One parsed JSON value. A tagged union over the five JSON kinds
/// (integers are not distinguished from doubles; the writer re-derives
/// integerness the same way the metrics registry does).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_object() const noexcept { return type_ == Type::kObject; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }

  /// Value accessors. Wrong-type access returns the neutral value
  /// (0.0 / false / "" / empty container) instead of throwing: the
  /// advisor treats missing-or-mistyped fields as absent evidence, and
  /// has_key()/find() exist for the cases that must distinguish.
  double number() const noexcept { return type_ == Type::kNumber ? num_ : 0.0; }
  bool boolean() const noexcept { return type_ == Type::kBool && num_ != 0.0; }
  const std::string& string() const noexcept { return str_; }
  const std::vector<Json>& array() const noexcept { return arr_; }
  const std::vector<std::pair<std::string, Json>>& members() const noexcept {
    return obj_;
  }

  /// Object lookup, first match in document order; nullptr when absent
  /// or when this value is not an object.
  const Json* find(const std::string& key) const noexcept;
  bool has_key(const std::string& key) const noexcept {
    return find(key) != nullptr;
  }

  /// Convenience: find(key)->number() with a fallback for absence.
  double number_or(const std::string& key, double fallback) const noexcept;
  /// Convenience: find(key)->string() or "" for absence.
  const std::string& string_or_empty(const std::string& key) const noexcept;

  /// Parse one complete document; trailing non-whitespace is an error.
  /// Throws homp::ParseError with the offending byte offset.
  static Json parse(const std::string& text);

  /// Parse the file at `path`. Throws homp::ConfigError when the file
  /// cannot be read, homp::ParseError when its content is malformed.
  static Json parse_file(const std::string& path);

  // Construction helpers for the ingestion code (tests build expected
  // values with these too).
  static Json make_null() { return Json(); }
  static Json make_bool(bool b);
  static Json make_number(double v);
  static Json make_string(std::string s);
  static Json make_array(std::vector<Json> items);
  static Json make_object(std::vector<std::pair<std::string, Json>> members);

 private:
  Type type_ = Type::kNull;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace homp::advise

#endif  // HOMP_ADVISE_JSON_H
