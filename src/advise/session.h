#ifndef HOMP_ADVISE_SESSION_H
#define HOMP_ADVISE_SESSION_H

/// \file session.h
/// The advisor's session store: every observability artifact of one or
/// more runs, reloaded from disk and merged into a joint view that the
/// attribution engine (advise/attribution.h) consumes.
///
/// A session accepts any mix of the five artifact kinds HOMP writes,
/// sniffed by their version keys (docs/OBSERVABILITY.md "Artifact
/// kinds"):
///   - decision audits       ("homp_audit_version", runtime/audit_export.h)
///   - serve audits          ("homp_serve_audit_version", serve/report.h)
///   - metrics registries    ("homp_metrics_version", obs/metrics.h)
///   - chrome traces         (top-level JSON array, runtime/trace.h)
///   - bench records         ("bench" key; bench/*.cpp)
///
/// Metrics files are folded into one obs::MetricsRegistry with the
/// registry's own merge semantics (counters add, gauges last-wins,
/// histograms bucket-merge); reconstruction from exported JSON is exact,
/// so a reloaded registry re-exports byte-identically. Audits and traces
/// are kept per-run so attribution can distinguish findings persistent
/// across N runs from one-offs.

#include <cstdint>
#include <string>
#include <vector>

#include "advise/json.h"
#include "obs/metrics.h"

namespace homp::advise {

/// What kind of HOMP artifact a parsed JSON document is.
enum class ArtifactKind {
  kAudit = 0,
  kServeAudit,
  kMetrics,
  kTrace,
  kBench,
  kUnknown,
};

const char* to_string(ArtifactKind k) noexcept;

/// Sniff the artifact kind from a parsed document's version keys.
ArtifactKind classify(const Json& doc) noexcept;

/// Reloaded PredictionErrorStats of one device (means precomputed by the
/// exporter; -1 extrema mean "no samples yet").
struct AuditPrediction {
  double model1_mean = -1.0;
  double model2_mean = -1.0;
  double profile_mean = -1.0;
  long long model_samples = 0;
  long long profile_samples = 0;
  double model1_min = -1.0, model1_max = -1.0;
  double model2_min = -1.0, model2_max = -1.0;
  double profile_min = -1.0, profile_max = -1.0;
};

/// One device row of a reloaded decision audit.
struct AuditDevice {
  std::string name;
  int id = -1;
  int slot = -1;
  double finish_time_s = 0.0;
  long long chunks = 0;
  long long iterations = 0;
  double bytes_in = 0.0;
  double bytes_out = 0.0;
  long long tardy_chunks = 0;
  long long spec_copies_run = 0;
  long long spec_copies_won = 0;
  long long requeued_iterations = 0;
  long long quarantine_count = 0;
  AuditPrediction prediction;
};

/// One decision row of a reloaded audit. Negative predictions mean "no
/// such predictor for this record"; actual_s < 0 means never backfilled.
struct AuditDecision {
  double time_s = 0.0;
  int slot = -1;
  std::string device;
  std::string kind;  ///< rt::to_string(DecisionKind) value
  long long begin = 0;
  long long end = 0;
  double chunk_bytes = 0.0;
  double model1_s = -1.0;
  double model2_s = -1.0;
  double profile_s = -1.0;
  double ewma_iter_s = -1.0;
  double actual_s = -1.0;
  std::string detail;
};

/// One reloaded offload decision audit (runtime/audit_export.h schema).
struct RunAudit {
  std::string algorithm;
  double total_time_s = 0.0;
  long long chunks_issued = 0;
  bool degraded = false;
  bool has_cutoff = false;
  std::vector<int> cutoff_selected;
  std::vector<double> cutoff_weights;
  std::vector<double> cutoff_pre_weights;
  std::vector<AuditDevice> devices;
  std::vector<AuditDecision> decisions;
};

/// Per-tenant counters of a reloaded serve audit.
struct ServeTenantRow {
  std::string name;
  std::string priority;
  long long submitted = 0;
  long long admitted = 0;
  long long rejected_shed = 0;
  long long rejected_breaker = 0;
  long long completed = 0;
  long long failed = 0;
  long long cancelled = 0;
  long long breaker_trips = 0;
};

/// One event row of a reloaded serve audit.
struct ServeAuditEvent {
  double time_s = 0.0;
  std::string kind;  ///< serve::to_string(ServeEventKind) value
  std::string tenant;
  std::uint64_t job_id = 0;
  std::string detail;
};

/// One reloaded serving-run audit (serve/report.h write_audit_json).
struct ServeAudit {
  double makespan_s = 0.0;
  int final_shed_level = 0;
  long long shed_transitions = 0;
  std::vector<ServeTenantRow> tenants;
  std::vector<ServeAuditEvent> events;
};

/// Per-device overlap evidence distilled from one chrome trace: how much
/// transfer time the pipeline hid behind that device's own compute.
struct TraceDevice {
  std::string name;
  int slot = -1;
  double transfer_s = 0.0;  ///< total copy-in + copy-out span time
  double hidden_s = 0.0;    ///< transfer time overlapped with own compute
  double compute_s = 0.0;
  double finish_s = 0.0;  ///< last span end on this device
};

/// One reloaded chrome trace, reduced to attribution evidence.
struct TraceEvidence {
  double makespan_s = 0.0;
  std::vector<TraceDevice> devices;
};

/// Reduce a parsed chrome trace array to per-device overlap evidence.
TraceEvidence reduce_trace(const Json& doc);

/// Fold one exported metrics document into `reg` — exact reconstruction
/// (bucket-for-bucket for histograms) followed by registry-semantics
/// merge. Throws ConfigError on a version mismatch.
void load_metrics(const Json& doc, obs::MetricsRegistry& reg);

/// The session store. add() artifacts in any order, then hand the whole
/// thing to attribute().
struct Session {
  std::vector<RunAudit> runs;
  std::vector<ServeAudit> serve_runs;
  std::vector<TraceEvidence> traces;
  obs::MetricsRegistry metrics;
  std::size_t metrics_files = 0;
  std::size_t bench_files = 0;  ///< counted, not attributed (diff input)

  /// Ingest one parsed document; returns its kind. Unknown artifacts
  /// throw ConfigError naming the path (for CLI exit-2 mapping).
  ArtifactKind add(const Json& doc, const std::string& origin);

  /// Json::parse_file + add.
  ArtifactKind load(const std::string& path);
};

}  // namespace homp::advise

#endif  // HOMP_ADVISE_SESSION_H
