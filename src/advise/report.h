#ifndef HOMP_ADVISE_REPORT_H
#define HOMP_ADVISE_REPORT_H

/// \file report.h
/// Rendering and comparison surfaces of the advisor: the ranked finding
/// report (text and JSON) and the direction-aware two-artifact diff the
/// CI perf sentinel runs.
///
/// Both renderers are pure functions of their inputs with deterministic
/// number formatting, so identical sessions produce byte-identical
/// output — the report determinism tests and the sentinel both depend
/// on it.

#include <iosfwd>
#include <string>
#include <vector>

#include "advise/attribution.h"
#include "advise/json.h"

namespace homp::advise {

/// Human-readable ranked report. `top` == 0 prints every finding.
void write_report(const std::vector<Inspection>& findings, std::ostream& os,
                  std::size_t top = 0);

/// Machine-readable report ("homp_advise_version": 1), same ranking.
void write_report_json(const std::vector<Inspection>& findings,
                       std::ostream& os, std::size_t top = 0);

/// One scalar that moved between the two compared artifacts.
struct DiffEntry {
  std::string key;  ///< flattened path, e.g. "scenarios/gpu4-axpy1M/..."
  double before = 0.0;
  double after = 0.0;
  /// Relative change (after-before)/before; 0 when before == 0.
  double rel = 0.0;
  bool structural = false;  ///< key exists on one side only
};

/// Verdict of comparing two artifacts of the same kind.
struct DiffResult {
  std::vector<DiffEntry> regressions;  ///< directional moves past tolerance
  std::vector<DiffEntry> changes;      ///< everything else that moved
  bool identical() const noexcept {
    return regressions.empty() && changes.empty();
  }
};

/// Compare two parsed artifacts. Numeric leaves are flattened to
/// path/value pairs; keys with a known good direction (throughput
/// higher-better, latency/makespan/violations lower-better) become
/// regressions when they move the wrong way by more than `tolerance`
/// (relative); every other move past tolerance is reported as a neutral
/// change. Throws ConfigError when the artifacts are different kinds.
DiffResult diff_artifacts(const Json& before, const Json& after,
                          double tolerance);

/// Render a verdict; `tolerance` is echoed in the header.
void write_diff(const DiffResult& r, double tolerance, std::ostream& os);
void write_diff_json(const DiffResult& r, double tolerance, std::ostream& os);

}  // namespace homp::advise

#endif  // HOMP_ADVISE_REPORT_H
