#include "advise/json.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace homp::advise {

namespace {

/// Recursive-descent parser over a complete in-memory document.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      throw ParseError("trailing content after JSON document", pos_);
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) throw ParseError("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Json::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Json::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Json::make_null();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    std::vector<std::pair<std::string, Json>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json::make_object(std::move(members));
    }
  }

  Json parse_array() {
    expect('[');
    std::vector<Json> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json::make_array(std::move(items));
    }
    for (;;) {
      skip_ws();
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid hex digit in \\u escape");
            }
          }
          // HOMP writers only ever emit \u00XX (control characters), but
          // decode the full BMP as UTF-8 for robustness.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool any = false;
    auto digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        any = true;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      digits();
    }
    if (!any) {
      pos_ = start;
      fail("invalid value");
    }
    // strtod round-trips the %.17g the writers emit exactly.
    const std::string tok = text_.substr(start, pos_ - start);
    return Json::make_number(std::strtod(tok.c_str(), nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Json* Json::find(const std::string& key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Json::number_or(const std::string& key, double fallback) const noexcept {
  const Json* v = find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

const std::string& Json::string_or_empty(const std::string& key) const noexcept {
  static const std::string kEmpty;
  const Json* v = find(key);
  return v != nullptr && v->is_string() ? v->string() : kEmpty;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

Json Json::parse_file(const std::string& path) {
  std::ifstream in(path);
  HOMP_REQUIRE(in.good(), "cannot read JSON file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

Json Json::make_bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.num_ = b ? 1.0 : 0.0;
  return j;
}

Json Json::make_number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = v;
  return j;
}

Json Json::make_string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::make_array(std::vector<Json> items) {
  Json j;
  j.type_ = Type::kArray;
  j.arr_ = std::move(items);
  return j;
}

Json Json::make_object(std::vector<std::pair<std::string, Json>> members) {
  Json j;
  j.type_ = Type::kObject;
  j.obj_ = std::move(members);
  return j;
}

}  // namespace homp::advise
