#include "advise/report.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "advise/report_keys.h"
#include "advise/session.h"
#include "common/error.h"

namespace homp::advise {

namespace {

/// The registry's deterministic rendering rule: integers bare, all other
/// finite doubles through %.17g.
std::string num(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Compact rendering for the text report.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void escape_into(std::ostream& os, const std::string& s) {
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"') {
      os << "\\\"";
    } else if (c == '\\') {
      os << "\\\\";
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      os << buf;
    } else {
      os << c;
    }
  }
}

std::size_t capped(std::size_t n, std::size_t top) {
  return top == 0 || top > n ? n : top;
}

}  // namespace

void write_report(const std::vector<Inspection>& findings, std::ostream& os,
                  std::size_t top) {
  const std::size_t n = capped(findings.size(), top);
  if (findings.empty()) {
    os << "homp-advise: no findings — nothing to tune on this evidence.\n";
    return;
  }
  os << "homp-advise: " << findings.size() << " finding"
     << (findings.size() == 1 ? "" : "s");
  if (n < findings.size()) os << " (showing top " << n << ")";
  os << ", ranked by estimated virtual-time saving\n";
  for (std::size_t i = 0; i < n; ++i) {
    const Inspection& f = findings[i];
    os << '\n'
       << (i + 1) << ". [" << f.severity << "] " << f.kind;
    if (!f.device.empty()) os << " @ " << f.device;
    if (!f.tenant.empty()) os << " @ tenant " << f.tenant;
    if (f.saving_s > 0.0) {
      os << "  (est. saving " << fmt(f.saving_s) << "s/run)";
    }
    os << "\n   evidence: " << f.evidence << "\n   knob: " << f.knob << '\n';
  }
}

void write_report_json(const std::vector<Inspection>& findings,
                       std::ostream& os, std::size_t top) {
  const std::size_t n = capped(findings.size(), top);
  os << "{\n  \"" << kReportVersionKey << "\": 1,\n  \"" << kFindingsKey
     << "\": [";
  for (std::size_t i = 0; i < n; ++i) {
    const Inspection& f = findings[i];
    os << (i ? ",\n" : "\n") << "    {\"kind\": \"";
    escape_into(os, f.kind);
    os << "\", \"severity\": \"";
    escape_into(os, f.severity);
    os << "\", \"device\": \"";
    escape_into(os, f.device);
    os << "\", \"tenant\": \"";
    escape_into(os, f.tenant);
    os << "\", \"saving_s\": " << num(f.saving_s)
       << ", \"runs_present\": " << f.runs_present
       << ", \"runs_total\": " << f.runs_total
       << ", \"persistent\": " << (f.persistent ? "true" : "false")
       << ", \"evidence\": \"";
    escape_into(os, f.evidence);
    os << "\", \"knob\": \"";
    escape_into(os, f.knob);
    os << "\"}";
  }
  os << "\n  ]\n}\n";
}

namespace {

/// Leaf name of a flattened path ("scenarios/x/events_per_sec" ->
/// "events_per_sec").
std::string leaf(const std::string& path) {
  const std::size_t sl = path.rfind('/');
  return sl == std::string::npos ? path : path.substr(sl + 1);
}

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

enum class Direction { kHigherBetter, kLowerBetter, kNeutral };

/// Good direction of a flattened key, by its leaf name. Conservative:
/// only obviously-directional families regress; everything else is a
/// neutral change (reported, never failing the sentinel).
Direction direction_of(const std::string& path) {
  std::string k = leaf(path);
  if (k == "value") {
    // Metrics rows keep their number under a generic "value" leaf; the
    // directional name is the parent component, minus its {label} set.
    std::string name = leaf(path.substr(0, path.rfind('/')));
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) name.resize(brace);
    if (name != "value") k = name;
  }
  if (ends_with(k, "_per_sec") || contains(k, "goodput")) {
    return Direction::kHigherBetter;
  }
  if (contains(k, "p99") || contains(k, "p50") || contains(k, "latency") ||
      contains(k, "violation") || ends_with(k, "_seconds") ||
      ends_with(k, "_seconds_total") || k == "total_time_s" ||
      k == "makespan_s" || ends_with(k, "overhead")) {
    return Direction::kLowerBetter;
  }
  return Direction::kNeutral;
}

/// Flatten numeric (and boolean) leaves into path -> value pairs, in
/// document order. Array elements key by member "name" when present so
/// bench scenarios line up even if reordered; metrics rows additionally
/// carry their label set, which disambiguates the many series sharing
/// one metric name.
void flatten(const Json& v, const std::string& path,
             std::vector<std::pair<std::string, double>>& out) {
  switch (v.type()) {
    case Json::Type::kNumber:
    case Json::Type::kBool:
      out.emplace_back(path, v.is_bool() ? (v.boolean() ? 1.0 : 0.0)
                                         : v.number());
      break;
    case Json::Type::kObject:
      for (const auto& [k, child] : v.members()) {
        flatten(child, path.empty() ? k : path + '/' + k, out);
      }
      break;
    case Json::Type::kArray: {
      const auto& items = v.array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        std::string key = std::to_string(i);
        if (items[i].is_object()) {
          const std::string& name = items[i].string_or_empty("name");
          if (!name.empty()) {
            key = name;
            const std::string& labels = items[i].string_or_empty("labels");
            if (!labels.empty()) key += '{' + labels + '}';
          }
        }
        flatten(items[i], path.empty() ? key : path + '/' + key, out);
      }
      break;
    }
    default:
      break;  // strings and nulls don't diff numerically
  }
}

}  // namespace

DiffResult diff_artifacts(const Json& before, const Json& after,
                          double tolerance) {
  HOMP_REQUIRE(classify(before) == classify(after),
               std::string("cannot diff different artifact kinds: ") +
                   to_string(classify(before)) + " vs " +
                   to_string(classify(after)));

  std::vector<std::pair<std::string, double>> a, b;
  flatten(before, "", a);
  flatten(after, "", b);

  auto find_in = [](const std::vector<std::pair<std::string, double>>& v,
                    const std::string& key) -> const double* {
    for (const auto& [k, val] : v) {
      if (k == key) return &val;
    }
    return nullptr;
  };

  DiffResult r;
  for (const auto& [key, before_v] : a) {
    const double* after_p = find_in(b, key);
    if (after_p == nullptr) {
      r.changes.push_back({key, before_v, 0.0, 0.0, true});
      continue;
    }
    const double after_v = *after_p;
    if (before_v == after_v) continue;
    DiffEntry e{key, before_v, after_v, 0.0, false};
    if (before_v != 0.0) e.rel = (after_v - before_v) / std::fabs(before_v);
    const Direction dir = direction_of(key);
    const bool past_tolerance =
        before_v == 0.0 ? true : std::fabs(e.rel) > tolerance;
    if (!past_tolerance) continue;
    const bool worse =
        (dir == Direction::kHigherBetter && after_v < before_v) ||
        (dir == Direction::kLowerBetter && after_v > before_v);
    if (worse) {
      r.regressions.push_back(std::move(e));
    } else {
      r.changes.push_back(std::move(e));
    }
  }
  for (const auto& [key, after_v] : b) {
    if (find_in(a, key) == nullptr) {
      r.changes.push_back({key, 0.0, after_v, 0.0, true});
    }
  }
  return r;
}

namespace {

void write_entry_text(const DiffEntry& e, std::ostream& os) {
  os << "  " << e.key << ": ";
  if (e.structural) {
    if (e.before == 0.0 && e.after != 0.0) {
      os << "only in B (" << fmt(e.after) << ")";
    } else {
      os << "only in A (" << fmt(e.before) << ")";
    }
  } else {
    os << fmt(e.before) << " -> " << fmt(e.after);
    if (e.rel != 0.0) {
      os << " (" << (e.rel > 0 ? "+" : "") << fmt(e.rel * 100.0) << "%)";
    }
  }
  os << '\n';
}

void write_entry_json(const DiffEntry& e, std::ostream& os) {
  os << "    {\"key\": \"";
  escape_into(os, e.key);
  os << "\", \"before\": " << num(e.before) << ", \"after\": " << num(e.after)
     << ", \"rel\": " << num(e.rel)
     << ", \"structural\": " << (e.structural ? "true" : "false") << '}';
}

}  // namespace

void write_diff(const DiffResult& r, double tolerance, std::ostream& os) {
  if (r.identical()) {
    os << "homp-advise diff: identical within tolerance " << fmt(tolerance)
       << '\n';
    return;
  }
  os << "homp-advise diff (tolerance " << fmt(tolerance) << "): "
     << r.regressions.size() << " regression"
     << (r.regressions.size() == 1 ? "" : "s") << ", " << r.changes.size()
     << " other change" << (r.changes.size() == 1 ? "" : "s") << '\n';
  if (!r.regressions.empty()) {
    os << "regressions:\n";
    for (const DiffEntry& e : r.regressions) write_entry_text(e, os);
  }
  if (!r.changes.empty()) {
    os << "changes:\n";
    for (const DiffEntry& e : r.changes) write_entry_text(e, os);
  }
}

void write_diff_json(const DiffResult& r, double tolerance, std::ostream& os) {
  os << "{\n  \"" << kDiffVersionKey
     << "\": 1,\n  \"tolerance\": " << num(tolerance) << ",\n  \""
     << kRegressionsKey << "\": [";
  for (std::size_t i = 0; i < r.regressions.size(); ++i) {
    os << (i ? ",\n" : "\n");
    write_entry_json(r.regressions[i], os);
  }
  os << (r.regressions.empty() ? "]" : "\n  ]") << ",\n  \"" << kChangesKey
     << "\": [";
  for (std::size_t i = 0; i < r.changes.size(); ++i) {
    os << (i ? ",\n" : "\n");
    write_entry_json(r.changes[i], os);
  }
  os << (r.changes.empty() ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace homp::advise
