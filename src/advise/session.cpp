#include "advise/session.h"

#include <algorithm>
#include <cstdlib>

#include "common/error.h"

namespace homp::advise {

namespace {

long long ll(const Json& obj, const char* key) {
  return static_cast<long long>(obj.number_or(key, 0.0));
}

AuditPrediction load_prediction(const Json& p) {
  AuditPrediction out;
  out.model1_mean = p.number_or("model1_mean", -1.0);
  out.model2_mean = p.number_or("model2_mean", -1.0);
  out.profile_mean = p.number_or("profile_mean", -1.0);
  out.model_samples = ll(p, "model_samples");
  out.profile_samples = ll(p, "profile_samples");
  out.model1_min = p.number_or("model1_min", -1.0);
  out.model1_max = p.number_or("model1_max", -1.0);
  out.model2_min = p.number_or("model2_min", -1.0);
  out.model2_max = p.number_or("model2_max", -1.0);
  out.profile_min = p.number_or("profile_min", -1.0);
  out.profile_max = p.number_or("profile_max", -1.0);
  return out;
}

RunAudit load_audit(const Json& doc) {
  RunAudit run;
  run.algorithm = doc.string_or_empty("algorithm");
  run.total_time_s = doc.number_or("total_time_s", 0.0);
  run.chunks_issued = ll(doc, "chunks_issued");
  const Json* degraded = doc.find("degraded");
  run.degraded = degraded != nullptr && degraded->boolean();
  const Json* has_cutoff = doc.find("has_cutoff");
  run.has_cutoff = has_cutoff != nullptr && has_cutoff->boolean();

  if (const Json* cut = doc.find("cutoff"); cut != nullptr) {
    if (const Json* sel = cut->find("selected"); sel != nullptr) {
      for (const Json& v : sel->array()) {
        run.cutoff_selected.push_back(static_cast<int>(v.number()));
      }
    }
    if (const Json* w = cut->find("weights"); w != nullptr) {
      for (const Json& v : w->array()) run.cutoff_weights.push_back(v.number());
    }
    if (const Json* pw = cut->find("pre_weights"); pw != nullptr) {
      for (const Json& v : pw->array()) {
        run.cutoff_pre_weights.push_back(v.number());
      }
    }
  }

  if (const Json* devs = doc.find("devices"); devs != nullptr) {
    for (const Json& d : devs->array()) {
      AuditDevice dev;
      dev.name = d.string_or_empty("name");
      dev.id = static_cast<int>(d.number_or("id", -1.0));
      dev.slot = static_cast<int>(d.number_or("slot", -1.0));
      dev.finish_time_s = d.number_or("finish_time_s", 0.0);
      dev.chunks = ll(d, "chunks");
      dev.iterations = ll(d, "iterations");
      dev.bytes_in = d.number_or("bytes_in", 0.0);
      dev.bytes_out = d.number_or("bytes_out", 0.0);
      dev.tardy_chunks = ll(d, "tardy_chunks");
      dev.spec_copies_run = ll(d, "spec_copies_run");
      dev.spec_copies_won = ll(d, "spec_copies_won");
      dev.requeued_iterations = ll(d, "requeued_iterations");
      dev.quarantine_count = ll(d, "quarantine_count");
      if (const Json* p = d.find("prediction"); p != nullptr) {
        dev.prediction = load_prediction(*p);
      }
      run.devices.push_back(std::move(dev));
    }
  }

  if (const Json* decs = doc.find("decisions"); decs != nullptr) {
    for (const Json& d : decs->array()) {
      AuditDecision dec;
      dec.time_s = d.number_or("time_s", 0.0);
      dec.slot = static_cast<int>(d.number_or("slot", -1.0));
      dec.device = d.string_or_empty("device");
      dec.kind = d.string_or_empty("kind");
      dec.begin = ll(d, "begin");
      dec.end = ll(d, "end");
      dec.chunk_bytes = d.number_or("chunk_bytes", 0.0);
      dec.model1_s = d.number_or("model1_s", -1.0);
      dec.model2_s = d.number_or("model2_s", -1.0);
      dec.profile_s = d.number_or("profile_s", -1.0);
      dec.ewma_iter_s = d.number_or("ewma_iter_s", -1.0);
      dec.actual_s = d.number_or("actual_s", -1.0);
      dec.detail = d.string_or_empty("detail");
      run.decisions.push_back(std::move(dec));
    }
  }
  return run;
}

ServeAudit load_serve_audit(const Json& doc) {
  ServeAudit run;
  run.makespan_s = doc.number_or("makespan_s", 0.0);
  run.final_shed_level = static_cast<int>(doc.number_or("final_shed_level", 0));
  run.shed_transitions = ll(doc, "shed_transitions");
  if (const Json* tenants = doc.find("tenants"); tenants != nullptr) {
    for (const Json& t : tenants->array()) {
      ServeTenantRow row;
      row.name = t.string_or_empty("name");
      row.priority = t.string_or_empty("class");
      row.submitted = ll(t, "submitted");
      row.admitted = ll(t, "admitted");
      row.rejected_shed = ll(t, "rejected_shed");
      row.rejected_breaker = ll(t, "rejected_breaker");
      row.completed = ll(t, "completed");
      row.failed = ll(t, "failed");
      row.cancelled = ll(t, "cancelled");
      row.breaker_trips = ll(t, "breaker_trips");
      run.tenants.push_back(std::move(row));
    }
  }
  if (const Json* events = doc.find("events"); events != nullptr) {
    for (const Json& e : events->array()) {
      ServeAuditEvent ev;
      ev.time_s = e.number_or("time_s", 0.0);
      ev.kind = e.string_or_empty("kind");
      ev.tenant = e.string_or_empty("tenant");
      ev.job_id = static_cast<std::uint64_t>(e.number_or("job_id", 0.0));
      ev.detail = e.string_or_empty("detail");
      run.events.push_back(std::move(ev));
    }
  }
  return run;
}

/// Half-open [t0, t1) intervals, kept sorted and disjoint by normalize().
using Intervals = std::vector<std::pair<double, double>>;

void normalize(Intervals& iv) {
  std::sort(iv.begin(), iv.end());
  Intervals out;
  for (const auto& [a, b] : iv) {
    if (b <= a) continue;
    if (!out.empty() && a <= out.back().second) {
      out.back().second = std::max(out.back().second, b);
    } else {
      out.emplace_back(a, b);
    }
  }
  iv = std::move(out);
}

double measure(const Intervals& iv) {
  double total = 0.0;
  for (const auto& [a, b] : iv) total += b - a;
  return total;
}

/// Total length of the intersection of two normalized interval sets.
double intersection_measure(const Intervals& x, const Intervals& y) {
  double total = 0.0;
  std::size_t i = 0, j = 0;
  while (i < x.size() && j < y.size()) {
    const double lo = std::max(x[i].first, y[j].first);
    const double hi = std::min(x[i].second, y[j].second);
    if (hi > lo) total += hi - lo;
    if (x[i].second < y[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

/// First word of a span name: "compute [0, 100)" -> "compute".
std::string phase_of(const std::string& name) {
  const std::size_t sp = name.find(' ');
  return sp == std::string::npos ? name : name.substr(0, sp);
}

}  // namespace

const char* to_string(ArtifactKind k) noexcept {
  switch (k) {
    case ArtifactKind::kAudit:
      return "audit";
    case ArtifactKind::kServeAudit:
      return "serve-audit";
    case ArtifactKind::kMetrics:
      return "metrics";
    case ArtifactKind::kTrace:
      return "trace";
    case ArtifactKind::kBench:
      return "bench";
    case ArtifactKind::kUnknown:
      break;
  }
  return "unknown";
}

ArtifactKind classify(const Json& doc) noexcept {
  if (doc.is_array()) return ArtifactKind::kTrace;
  if (!doc.is_object()) return ArtifactKind::kUnknown;
  if (doc.has_key("homp_audit_version")) return ArtifactKind::kAudit;
  if (doc.has_key("homp_serve_audit_version")) return ArtifactKind::kServeAudit;
  if (doc.has_key("homp_metrics_version")) return ArtifactKind::kMetrics;
  if (doc.has_key("bench")) return ArtifactKind::kBench;
  return ArtifactKind::kUnknown;
}

TraceEvidence reduce_trace(const Json& doc) {
  TraceEvidence out;
  struct PerSlot {
    std::string name;
    Intervals transfer;
    Intervals compute;
    double finish = 0.0;
  };
  std::vector<std::pair<int, PerSlot>> slots;  // insertion order = trace order
  auto slot_of = [&slots](int tid) -> PerSlot& {
    for (auto& [t, s] : slots) {
      if (t == tid) return s;
    }
    slots.emplace_back(tid, PerSlot{});
    return slots.back().second;
  };

  for (const Json& ev : doc.array()) {
    if (ev.string_or_empty("ph") != "X") continue;
    const double t0 = ev.number_or("ts", 0.0) / 1e6;
    const double t1 = t0 + ev.number_or("dur", 0.0) / 1e6;
    const int tid = static_cast<int>(ev.number_or("tid", -1.0));
    const std::string phase = phase_of(ev.string_or_empty("name"));
    PerSlot& s = slot_of(tid);
    if (s.name.empty()) {
      if (const Json* args = ev.find("args"); args != nullptr) {
        s.name = args->string_or_empty("device");
      }
    }
    if (phase == "copy-in" || phase == "copy-out") {
      s.transfer.emplace_back(t0, t1);
    } else if (phase == "compute") {
      s.compute.emplace_back(t0, t1);
    }
    s.finish = std::max(s.finish, t1);
    out.makespan_s = std::max(out.makespan_s, t1);
  }

  for (auto& [tid, s] : slots) {
    normalize(s.transfer);
    normalize(s.compute);
    TraceDevice dev;
    dev.name = s.name.empty() ? "slot " + std::to_string(tid) : s.name;
    dev.slot = tid;
    dev.transfer_s = measure(s.transfer);
    dev.compute_s = measure(s.compute);
    dev.hidden_s = intersection_measure(s.transfer, s.compute);
    dev.finish_s = s.finish;
    out.devices.push_back(std::move(dev));
  }
  return out;
}

void load_metrics(const Json& doc, obs::MetricsRegistry& reg) {
  HOMP_REQUIRE(doc.number_or("homp_metrics_version", 0.0) == 1.0,
               "unsupported homp_metrics_version in metrics document");
  const Json* metrics = doc.find("metrics");
  if (metrics == nullptr) return;
  for (const Json& m : metrics->array()) {
    const std::string& name = m.string_or_empty("name");
    const std::string& labels = m.string_or_empty("labels");
    const std::string& type = m.string_or_empty("type");
    if (type == "counter") {
      reg.add(name, labels, m.number_or("value", 0.0));
    } else if (type == "gauge") {
      reg.set(name, labels, m.number_or("value", 0.0));
    } else if (type == "histogram") {
      // Exact reconstruction: the exporter emits cumulative counts for
      // finite buckets 0..last in order, then "+Inf" with the total.
      // Per-bucket counts are the cumulative diffs; any remainder beyond
      // the last finite entry can only live in the final bucket
      // (write_json collapses trailing-empty buckets into +Inf).
      obs::Histogram h;
      std::uint64_t prev = 0;
      int idx = 0;
      const auto total =
          static_cast<std::uint64_t>(m.number_or("count", 0.0));
      if (const Json* buckets = m.find("buckets"); buckets != nullptr) {
        for (const Json& b : buckets->array()) {
          const Json* le = b.find("le");
          if (le == nullptr || !le->is_number()) continue;  // "+Inf" row
          const auto cum = static_cast<std::uint64_t>(b.number_or("count", 0));
          h.add_bucket(idx, cum - prev);
          prev = cum;
          ++idx;
        }
      }
      if (total > prev) {
        h.add_bucket(obs::Histogram::kNumBuckets - 1, total - prev);
      }
      h.add_sum(m.number_or("sum", 0.0));
      reg.merge_histogram(name, labels, h);
    }
  }
}

ArtifactKind Session::add(const Json& doc, const std::string& origin) {
  const ArtifactKind kind = classify(doc);
  switch (kind) {
    case ArtifactKind::kAudit:
      runs.push_back(load_audit(doc));
      break;
    case ArtifactKind::kServeAudit:
      serve_runs.push_back(load_serve_audit(doc));
      break;
    case ArtifactKind::kMetrics:
      load_metrics(doc, metrics);
      ++metrics_files;
      break;
    case ArtifactKind::kTrace:
      traces.push_back(reduce_trace(doc));
      break;
    case ArtifactKind::kBench:
      ++bench_files;
      break;
    case ArtifactKind::kUnknown:
      HOMP_REQUIRE(false, "unrecognized HOMP artifact: " + origin +
                              " (expected a decision audit, serve audit, "
                              "metrics, trace, or bench record)");
  }
  return kind;
}

ArtifactKind Session::load(const std::string& path) {
  return add(Json::parse_file(path), path);
}

}  // namespace homp::advise
