#ifndef HOMP_LANG_AST_H
#define HOMP_LANG_AST_H

/// \file ast.h
/// AST of the HOMP kernel language (a C loop-nest subset): arithmetic and
/// comparison expressions over scalars and dense array references,
/// assignments (= and +=), `if (...) continue;` guards, and (possibly
/// nested) canonical for-loops.

#include <memory>
#include <string>
#include <vector>

namespace homp::lang {

// ---- expressions ----

enum class BinOp {
  kAdd, kSub, kMul, kDiv,
  kLt, kGt, kLe, kGe, kEq, kNe,
  kOr, kAnd,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { kNumber, kVar, kArrayRef, kBinary, kUnary, kCall };
  Kind kind;
  std::size_t offset = 0;  // source position for diagnostics

  // kNumber
  double number = 0.0;
  // kVar / kArrayRef / kCall
  std::string name;
  // kArrayRef subscripts / kCall arguments
  std::vector<ExprPtr> args;
  // kBinary / kUnary
  BinOp op = BinOp::kAdd;
  ExprPtr lhs, rhs;  // kUnary uses lhs only (negation / logical not)
  bool is_not = false;  // kUnary: true = !, false = unary minus
};

// ---- statements ----

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct ForLoop {
  std::string var;
  ExprPtr init;   ///< initial value of var
  ExprPtr bound;  ///< loop runs while var < bound
  long long step = 1;
  std::vector<StmtPtr> body;
  std::size_t offset = 0;
};

struct Stmt {
  enum class Kind { kAssign, kIfContinue, kFor, kContinue };
  Kind kind;
  std::size_t offset = 0;

  // kAssign
  ExprPtr target;  ///< kVar or kArrayRef expression
  bool compound = false;  ///< +=
  ExprPtr value;

  // kIfContinue: `if (cond) continue;` — the only conditional form, used
  // for boundary guards as in the paper's Jacobi (Fig. 3 line 21).
  ExprPtr cond;

  // kFor (nested sequential loop)
  std::unique_ptr<ForLoop> loop;
};

/// A parsed kernel: the HOMP pragmas plus the distributed outer loop.
struct KernelSource {
  std::vector<std::string> pragmas;  ///< raw directive strings, in order
  ForLoop outer;
};

}  // namespace homp::lang

#endif  // HOMP_LANG_AST_H
