#include "lang/compile.h"

#include "common/error.h"
#include "lang/analyze.h"
#include "lang/interp.h"
#include "lang/parser.h"

namespace homp::lang {

namespace {

/// Merge several parsed directives (data/target pragma + loop pragma, as
/// in the paper's two-line examples) into one effective directive.
pragma::ParsedDirective merge_directives(
    const std::vector<std::string>& pragmas) {
  pragma::ParsedDirective merged;
  bool have_any = false;
  for (const auto& text : pragmas) {
    auto d = pragma::parse_directive(text);
    HOMP_REQUIRE(d.kind != pragma::ParsedDirective::Kind::kHaloExchange,
                 "halo_exchange is a standalone directive, not part of an "
                 "offload kernel");
    have_any = true;
    if (!d.device_clause.empty()) {
      HOMP_REQUIRE(merged.device_clause.empty(),
                   "multiple device(...) clauses in one kernel");
      merged.device_clause = d.device_clause;
    }
    for (auto& m : d.maps) merged.maps.push_back(std::move(m));
    if (d.has_dist_schedule) {
      HOMP_REQUIRE(!merged.has_dist_schedule,
                   "multiple dist_schedule(target:...) clauses");
      merged.has_dist_schedule = true;
      merged.loop_policy = d.loop_policy;
      merged.sched = d.sched;
      merged.sched_given = d.sched_given;
    }
    if (d.teams_policy != dist::PolicyKind::kBlock) {
      merged.teams_policy = d.teams_policy;
    }
    if (d.has_reduction) {
      merged.has_reduction = true;
      merged.reduction_var = d.reduction_var;
    }
    if (d.parallel) merged.parallel = true;
    if (d.collapse > merged.collapse) merged.collapse = d.collapse;
    if (d.loop_label != "loop") merged.loop_label = d.loop_label;
  }
  HOMP_REQUIRE(have_any, "no pragmas found");
  HOMP_REQUIRE(!merged.device_clause.empty(),
               "kernel pragmas name no device(...) targets");
  return merged;
}

/// Shared core: symbols table, bounds, cost analysis and interpreter.
struct OutlinedBody {
  rt::LoopKernel kernel;
  std::shared_ptr<void> retained;
};

OutlinedBody outline_body(std::shared_ptr<KernelSource> parsed,
                          const pragma::Bindings& bindings,
                          const Scalars& scalars,
                          const std::string& reduction_var,
                          const std::string& name) {
  std::map<std::string, double> symbols;
  for (const auto& [k, v] : bindings.symbols.values) {
    symbols[k] = static_cast<double>(v);
  }
  for (const auto& [k, v] : scalars.values) symbols[k] = v;

  const ForLoop& outer = parsed->outer;
  HOMP_REQUIRE(outer.step == 1,
               "the distributed loop must have unit step (canonical "
               "OpenMP loop)");
  const long long lo =
      static_cast<long long>(eval_const_expr(*outer.init, symbols));
  const long long hi =
      static_cast<long long>(eval_const_expr(*outer.bound, symbols));
  HOMP_REQUIRE(hi > lo, "the distributed loop is empty");

  OutlinedBody out;
  out.kernel.name = name;
  out.kernel.iterations = dist::Range(lo, hi);
  const CostCounts counts = analyze_body(outer, symbols);
  out.kernel.cost.flops_per_iter = counts.flops;
  out.kernel.cost.mem_bytes_per_iter = counts.mem_bytes;
  out.kernel.has_reduction = !reduction_var.empty();

  auto interp = std::make_shared<BodyInterpreter>(&parsed->outer,
                                                  std::move(symbols),
                                                  reduction_var);
  struct Retained {
    std::shared_ptr<KernelSource> ast;
    std::shared_ptr<BodyInterpreter> interp;
  };
  out.retained = std::make_shared<Retained>(Retained{parsed, interp});
  out.kernel.body = [interp](const dist::Range& chunk,
                             mem::DeviceDataEnv& env) {
    return interp->run_chunk(chunk, env);
  };
  return out;
}

}  // namespace

CompiledKernel compile_kernel(const std::string& source,
                              const pragma::Bindings& bindings,
                              const Scalars& scalars,
                              const mach::MachineDescriptor& machine,
                              const std::string& name) {
  auto parsed = std::make_shared<KernelSource>(parse_kernel(source));
  auto merged = merge_directives(parsed->pragmas);

  CompiledKernel out;
  out.maps = pragma::build_map_specs(merged, bindings);
  out.options = pragma::to_offload_options(merged, machine);

  // "Compiler analysis" (§IV-B2): per-iteration FLOPs and memory traffic
  // for the analytical models; transfer bytes are derived by the runtime
  // from the actual map footprints.
  auto body = outline_body(parsed, bindings, scalars,
                           merged.has_reduction ? merged.reduction_var
                                                : std::string(),
                           name);
  out.kernel = std::move(body.kernel);
  out.retained = std::move(body.retained);
  return out;
}

CompiledRegion compile_data_region(const std::string& pragma_text,
                                   const pragma::Bindings& bindings,
                                   const mach::MachineDescriptor& machine,
                                   const std::string& loop_domain_symbol,
                                   sched::AlgorithmKind dist_algorithm) {
  auto d = pragma::parse_directive(pragma_text);
  HOMP_REQUIRE(d.kind == pragma::ParsedDirective::Kind::kTargetData,
               "compile_data_region expects a 'target data' directive");
  HOMP_REQUIRE(!d.device_clause.empty(),
               "data region has no device(...) clause");

  CompiledRegion out;
  out.maps = pragma::build_map_specs(d, bindings);
  out.options.device_ids =
      pragma::resolve_device_clause(d.device_clause, machine);
  out.options.dist_algorithm = dist_algorithm;

  // The region label is whatever the maps align to (e.g. loop1 in
  // Fig. 3); find it from the first ALIGN policy.
  std::string label;
  for (const auto& m : out.maps) {
    for (const auto& p : m.partition) {
      if (p.kind == dist::PolicyKind::kAlign && label.empty()) {
        label = p.align_target;
      }
    }
  }
  HOMP_REQUIRE(!label.empty(),
               "data region maps align to no label; nothing to distribute");
  out.options.loop_label = label;

  const long long n = bindings.symbols.resolve(loop_domain_symbol);
  out.options.loop_domain = dist::Range::of_size(n);
  return out;
}

CompiledLoop compile_region_loop(const std::string& source,
                                 const pragma::Bindings& bindings,
                                 const Scalars& scalars,
                                 const std::string& name) {
  auto parsed = std::make_shared<KernelSource>(parse_kernel(source));
  // Region loops may repeat target/device/map clauses (Fig. 3 does);
  // inside a region they are informational — take only the reduction.
  std::string reduction;
  for (const auto& text : parsed->pragmas) {
    auto d = pragma::parse_directive(text);
    if (d.has_reduction) reduction = d.reduction_var;
  }
  auto body = outline_body(parsed, bindings, scalars, reduction, name);
  CompiledLoop out;
  out.kernel = std::move(body.kernel);
  out.retained = std::move(body.retained);
  return out;
}

}  // namespace homp::lang
