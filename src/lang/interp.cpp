#include "lang/interp.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace homp::lang {

struct BodyInterpreter::Frame {
  mem::DeviceDataEnv* env = nullptr;
  /// Loop variables and body-local temporaries.
  std::map<std::string, double> locals;
  /// Views are fetched lazily per chunk and cached by array name.
  std::map<std::string, mem::ArrayView<double>> views;
  double reduction = 0.0;
};

BodyInterpreter::BodyInterpreter(const ForLoop* outer,
                                 std::map<std::string, double> scalars,
                                 std::string reduction_var)
    : outer_(outer),
      scalars_(std::move(scalars)),
      reduction_var_(std::move(reduction_var)) {
  HOMP_ASSERT(outer_ != nullptr);
}

double BodyInterpreter::run_chunk(const dist::Range& chunk,
                                  mem::DeviceDataEnv& env) const {
  Frame f;
  f.env = &env;
  if (!reduction_var_.empty()) f.locals[reduction_var_] = 0.0;
  for (long long i = chunk.lo; i < chunk.hi; i += outer_->step) {
    f.locals[outer_->var] = static_cast<double>(i);
    exec_block(outer_->body, f);  // kContinue here ends this iteration
  }
  return reduction_var_.empty() ? 0.0 : f.locals[reduction_var_];
}

BodyInterpreter::Flow BodyInterpreter::exec_block(
    const std::vector<StmtPtr>& body, Frame& f) const {
  for (const auto& s : body) {
    if (exec(*s, f) == Flow::kContinue) return Flow::kContinue;
  }
  return Flow::kNormal;
}

BodyInterpreter::Flow BodyInterpreter::exec(const Stmt& s, Frame& f) const {
  switch (s.kind) {
    case Stmt::Kind::kAssign:
      assign(*s.target, s.compound, eval(*s.value, f), f);
      return Flow::kNormal;
    case Stmt::Kind::kIfContinue:
      return eval(*s.cond, f) != 0.0 ? Flow::kContinue : Flow::kNormal;
    case Stmt::Kind::kContinue:
      return Flow::kContinue;
    case Stmt::Kind::kFor:
      run_loop(*s.loop, f);
      return Flow::kNormal;
  }
  return Flow::kNormal;
}

void BodyInterpreter::run_loop(const ForLoop& loop, Frame& f) const {
  const double init = eval(*loop.init, f);
  for (double v = init;; v += static_cast<double>(loop.step)) {
    f.locals[loop.var] = v;
    if (v >= eval(*loop.bound, f)) break;
    exec_block(loop.body, f);  // continue targets this loop
  }
}

void BodyInterpreter::assign(const Expr& target, bool compound, double value,
                             Frame& f) const {
  if (target.kind == Expr::Kind::kVar) {
    double& slot = f.locals[target.name];  // creates temporaries on demand
    slot = compound ? slot + value : value;
    return;
  }
  HOMP_ASSERT(target.kind == Expr::Kind::kArrayRef);
  auto view_it = f.views.find(target.name);
  if (view_it == f.views.end()) {
    view_it = f.views.emplace(target.name,
                              f.env->view<double>(target.name)).first;
  }
  auto& view = view_it->second;
  if (target.args.size() == 1) {
    double& slot = view(eval_index(*target.args[0], f));
    slot = compound ? slot + value : value;
  } else if (target.args.size() == 2) {
    double& slot = view(eval_index(*target.args[0], f),
                        eval_index(*target.args[1], f));
    slot = compound ? slot + value : value;
  } else {
    throw ExecutionError("arrays of rank > 2 are not supported in the "
                         "kernel language");
  }
}

long long BodyInterpreter::eval_index(const Expr& e, Frame& f) const {
  const double v = eval(e, f);
  const long long i = static_cast<long long>(std::llround(v));
  if (static_cast<double>(i) != v) {
    throw ExecutionError("array subscript is not an integer");
  }
  return i;
}

double BodyInterpreter::eval(const Expr& e, Frame& f) const {
  switch (e.kind) {
    case Expr::Kind::kNumber:
      return e.number;
    case Expr::Kind::kVar: {
      if (auto it = f.locals.find(e.name); it != f.locals.end()) {
        return it->second;
      }
      if (auto it = scalars_.find(e.name); it != scalars_.end()) {
        return it->second;
      }
      throw ExecutionError("unknown identifier '" + e.name +
                           "' in kernel body (bind scalars via "
                           "lang::Scalars)");
    }
    case Expr::Kind::kArrayRef: {
      auto view_it = f.views.find(e.name);
      if (view_it == f.views.end()) {
        view_it =
            f.views.emplace(e.name, f.env->view<double>(e.name)).first;
      }
      auto& view = view_it->second;
      if (e.args.size() == 1) return view(eval_index(*e.args[0], f));
      if (e.args.size() == 2) {
        return view(eval_index(*e.args[0], f), eval_index(*e.args[1], f));
      }
      throw ExecutionError("arrays of rank > 2 are not supported");
    }
    case Expr::Kind::kBinary: {
      const double a = eval(*e.lhs, f);
      // Short-circuit the logical operators.
      if (e.op == BinOp::kOr) {
        return (a != 0.0 || eval(*e.rhs, f) != 0.0) ? 1.0 : 0.0;
      }
      if (e.op == BinOp::kAnd) {
        return (a != 0.0 && eval(*e.rhs, f) != 0.0) ? 1.0 : 0.0;
      }
      const double b = eval(*e.rhs, f);
      switch (e.op) {
        case BinOp::kAdd: return a + b;
        case BinOp::kSub: return a - b;
        case BinOp::kMul: return a * b;
        case BinOp::kDiv: return a / b;
        case BinOp::kLt: return a < b ? 1.0 : 0.0;
        case BinOp::kGt: return a > b ? 1.0 : 0.0;
        case BinOp::kLe: return a <= b ? 1.0 : 0.0;
        case BinOp::kGe: return a >= b ? 1.0 : 0.0;
        case BinOp::kEq: return a == b ? 1.0 : 0.0;
        case BinOp::kNe: return a != b ? 1.0 : 0.0;
        default: break;
      }
      throw ExecutionError("unhandled binary operator");
    }
    case Expr::Kind::kUnary:
      return e.is_not ? (eval(*e.lhs, f) == 0.0 ? 1.0 : 0.0)
                      : -eval(*e.lhs, f);
    case Expr::Kind::kCall: {
      auto arg = [&](std::size_t i) { return eval(*e.args[i], f); };
      if (e.name == "fabs" || e.name == "abs") {
        HOMP_REQUIRE(e.args.size() == 1, "fabs takes one argument");
        return std::abs(arg(0));
      }
      if (e.name == "sqrt") {
        HOMP_REQUIRE(e.args.size() == 1, "sqrt takes one argument");
        return std::sqrt(arg(0));
      }
      if (e.name == "sin") {
        HOMP_REQUIRE(e.args.size() == 1, "sin takes one argument");
        return std::sin(arg(0));
      }
      if (e.name == "cos") {
        HOMP_REQUIRE(e.args.size() == 1, "cos takes one argument");
        return std::cos(arg(0));
      }
      if (e.name == "min") {
        HOMP_REQUIRE(e.args.size() == 2, "min takes two arguments");
        return std::min(arg(0), arg(1));
      }
      if (e.name == "max") {
        HOMP_REQUIRE(e.args.size() == 2, "max takes two arguments");
        return std::max(arg(0), arg(1));
      }
      throw ExecutionError("unknown function '" + e.name +
                           "' (supported: fabs, sqrt, sin, cos, min, max)");
    }
  }
  throw ExecutionError("unhandled expression kind");
}

}  // namespace homp::lang
