#include "lang/analyze.h"

#include <cmath>

#include "common/error.h"

namespace homp::lang {

namespace {

bool is_arithmetic(BinOp op) {
  return op == BinOp::kAdd || op == BinOp::kSub || op == BinOp::kMul ||
         op == BinOp::kDiv;
}

/// Recursive cost of evaluating `e` once. `in_subscript` suppresses FLOP
/// counting (index arithmetic is integer ALU work).
void count_expr(const Expr& e, bool in_subscript, CostCounts* out) {
  switch (e.kind) {
    case Expr::Kind::kNumber:
    case Expr::Kind::kVar:
      return;
    case Expr::Kind::kArrayRef:
      out->mem_bytes += 8.0;
      for (const auto& idx : e.args) count_expr(*idx, true, out);
      return;
    case Expr::Kind::kBinary:
      if (!in_subscript && is_arithmetic(e.op)) out->flops += 1.0;
      count_expr(*e.lhs, in_subscript, out);
      count_expr(*e.rhs, in_subscript, out);
      return;
    case Expr::Kind::kUnary:
      if (!in_subscript && !e.is_not) out->flops += 1.0;
      count_expr(*e.lhs, in_subscript, out);
      return;
    case Expr::Kind::kCall:
      if (!in_subscript) out->flops += 1.0;
      for (const auto& a : e.args) count_expr(*a, in_subscript, out);
      return;
  }
}

void count_stmt(const Stmt& s, const std::map<std::string, double>& symbols,
                CostCounts* out);

void count_block(const std::vector<StmtPtr>& body,
                 const std::map<std::string, double>& symbols,
                 CostCounts* out) {
  for (const auto& s : body) count_stmt(*s, symbols, out);
}

long long trip_count(const ForLoop& loop,
                     const std::map<std::string, double>& symbols) {
  const double init = eval_const_expr(*loop.init, symbols);
  const double bound = eval_const_expr(*loop.bound, symbols);
  const double trips =
      std::ceil((bound - init) / static_cast<double>(loop.step));
  return trips > 0.0 ? static_cast<long long>(trips) : 0;
}

void count_stmt(const Stmt& s, const std::map<std::string, double>& symbols,
                CostCounts* out) {
  switch (s.kind) {
    case Stmt::Kind::kAssign: {
      count_expr(*s.value, false, out);
      if (s.target->kind == Expr::Kind::kArrayRef) {
        out->mem_bytes += 8.0;  // the store
        for (const auto& idx : s.target->args) {
          count_expr(*idx, true, out);
        }
        if (s.compound) out->mem_bytes += 8.0;  // the read of +=
      }
      if (s.compound) out->flops += 1.0;
      return;
    }
    case Stmt::Kind::kIfContinue:
      // SIMD assumption: the guard costs its condition, the guarded code
      // is counted in full by the surrounding walk.
      count_expr(*s.cond, false, out);
      return;
    case Stmt::Kind::kContinue:
      return;
    case Stmt::Kind::kFor: {
      CostCounts inner;
      count_block(s.loop->body, symbols, &inner);
      const double trips = static_cast<double>(trip_count(*s.loop, symbols));
      out->flops += inner.flops * trips;
      out->mem_bytes += inner.mem_bytes * trips;
      return;
    }
  }
}

}  // namespace

double eval_const_expr(const Expr& e,
                       const std::map<std::string, double>& symbols) {
  switch (e.kind) {
    case Expr::Kind::kNumber:
      return e.number;
    case Expr::Kind::kVar: {
      auto it = symbols.find(e.name);
      HOMP_REQUIRE(it != symbols.end(),
                   "loop bound references '" + e.name +
                       "', which has no bound value (declare it with "
                       "Bindings::let / Scalars)");
      return it->second;
    }
    case Expr::Kind::kBinary: {
      const double a = eval_const_expr(*e.lhs, symbols);
      const double b = eval_const_expr(*e.rhs, symbols);
      switch (e.op) {
        case BinOp::kAdd: return a + b;
        case BinOp::kSub: return a - b;
        case BinOp::kMul: return a * b;
        case BinOp::kDiv:
          HOMP_REQUIRE(b != 0.0, "division by zero in loop bound");
          return a / b;
        default:
          throw ConfigError("comparisons are not allowed in loop bounds");
      }
    }
    case Expr::Kind::kUnary:
      HOMP_REQUIRE(!e.is_not, "'!' is not allowed in loop bounds");
      return -eval_const_expr(*e.lhs, symbols);
    default:
      throw ConfigError(
          "loop bounds must be constant expressions over size symbols");
  }
}

CostCounts analyze_body(const ForLoop& outer,
                        const std::map<std::string, double>& symbols) {
  CostCounts out;
  count_block(outer.body, symbols, &out);
  return out;
}

long long outer_trip_count(const ForLoop& outer,
                           const std::map<std::string, double>& symbols) {
  return trip_count(outer, symbols);
}

}  // namespace homp::lang
