#include "lang/parser.h"

#include "common/error.h"
#include "common/strings.h"
#include "lang/token.h"

namespace homp::lang {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  ForLoop parse_outer() {
    ForLoop loop = parse_for();
    expect(Tok::kEnd, "trailing input after the loop nest");
    return loop;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }

  Token advance() { return toks_[pos_++]; }

  bool accept(Tok k) {
    if (cur().kind != k) return false;
    ++pos_;
    return true;
  }

  Token expect(Tok k, const std::string& what) {
    if (cur().kind != k) {
      throw ParseError("expected " + std::string(to_string(k)) + " (" +
                           what + "), found " +
                           std::string(to_string(cur().kind)),
                       cur().offset);
    }
    return advance();
  }

  ForLoop parse_for() {
    ForLoop loop;
    loop.offset = cur().offset;
    expect(Tok::kFor, "loop");
    expect(Tok::kLParen, "loop header");
    loop.var = expect(Tok::kIdent, "loop variable").text;
    expect(Tok::kAssign, "loop initialization");
    loop.init = parse_expr();
    expect(Tok::kSemi, "loop header");
    const std::string cmp_var = expect(Tok::kIdent, "loop condition").text;
    if (cmp_var != loop.var) {
      throw ParseError("loop condition must test the loop variable '" +
                           loop.var + "'",
                       cur().offset);
    }
    expect(Tok::kLt, "canonical loops use 'var < bound'");
    loop.bound = parse_expr();
    expect(Tok::kSemi, "loop header");
    parse_increment(&loop);
    expect(Tok::kRParen, "loop header");
    loop.body = parse_body();
    return loop;
  }

  void parse_increment(ForLoop* loop) {
    const std::string var = expect(Tok::kIdent, "loop increment").text;
    if (var != loop->var) {
      throw ParseError("loop increment must update '" + loop->var + "'",
                       cur().offset);
    }
    if (accept(Tok::kPlusPlus)) {
      loop->step = 1;
      return;
    }
    if (accept(Tok::kPlusAssign)) {
      loop->step = expect_int("loop step");
      return;
    }
    expect(Tok::kAssign, "loop increment");
    const std::string again = expect(Tok::kIdent, "loop increment").text;
    if (again != loop->var) {
      throw ParseError("loop increment must be var = var + step",
                       cur().offset);
    }
    expect(Tok::kPlus, "loop increment");
    loop->step = expect_int("loop step");
  }

  long long expect_int(const std::string& what) {
    const Token t = expect(Tok::kNumber, what);
    const long long v = static_cast<long long>(t.number);
    if (static_cast<double>(v) != t.number || v <= 0) {
      throw ParseError(what + " must be a positive integer", t.offset);
    }
    return v;
  }

  std::vector<StmtPtr> parse_body() {
    std::vector<StmtPtr> body;
    if (accept(Tok::kLBrace)) {
      while (!accept(Tok::kRBrace)) {
        if (cur().kind == Tok::kEnd) {
          throw ParseError("unterminated '{'", cur().offset);
        }
        body.push_back(parse_stmt());
      }
    } else {
      body.push_back(parse_stmt());
    }
    return body;
  }

  StmtPtr parse_stmt() {
    auto s = std::make_unique<Stmt>();
    s->offset = cur().offset;
    if (cur().kind == Tok::kFor) {
      s->kind = Stmt::Kind::kFor;
      s->loop = std::make_unique<ForLoop>(parse_for());
      return s;
    }
    if (accept(Tok::kIf)) {
      expect(Tok::kLParen, "if condition");
      s->cond = parse_expr();
      expect(Tok::kRParen, "if condition");
      expect(Tok::kContinue,
             "only 'if (...) continue;' guards are supported");
      expect(Tok::kSemi, "continue");
      s->kind = Stmt::Kind::kIfContinue;
      return s;
    }
    if (accept(Tok::kContinue)) {
      expect(Tok::kSemi, "continue");
      s->kind = Stmt::Kind::kContinue;
      return s;
    }
    // Assignment.
    s->kind = Stmt::Kind::kAssign;
    s->target = parse_postfix();
    if (s->target->kind != Expr::Kind::kVar &&
        s->target->kind != Expr::Kind::kArrayRef) {
      throw ParseError("assignment target must be a variable or array "
                       "element",
                       s->target->offset);
    }
    if (accept(Tok::kPlusAssign)) {
      s->compound = true;
    } else {
      expect(Tok::kAssign, "assignment");
    }
    s->value = parse_expr();
    expect(Tok::kSemi, "statement");
    return s;
  }

  // expr := or ; or := and ('||' and)* ; and := cmp ('&&' cmp)* ;
  // cmp := add (relop add)? ; add := mul (('+'|'-') mul)* ;
  // mul := unary (('*'|'/') unary)* ; unary := ('-'|'!') unary | postfix ;
  // postfix := primary ('[' expr ']')* ; primary := number | ident |
  //            ident '(' args ')' | '(' expr ')'
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    auto e = parse_and();
    while (cur().kind == Tok::kOrOr) {
      const std::size_t off = advance().offset;
      e = make_binary(BinOp::kOr, std::move(e), parse_and(), off);
    }
    return e;
  }

  ExprPtr parse_and() {
    auto e = parse_cmp();
    while (cur().kind == Tok::kAndAnd) {
      const std::size_t off = advance().offset;
      e = make_binary(BinOp::kAnd, std::move(e), parse_cmp(), off);
    }
    return e;
  }

  ExprPtr parse_cmp() {
    auto e = parse_add();
    BinOp op;
    switch (cur().kind) {
      case Tok::kLt: op = BinOp::kLt; break;
      case Tok::kGt: op = BinOp::kGt; break;
      case Tok::kLe: op = BinOp::kLe; break;
      case Tok::kGe: op = BinOp::kGe; break;
      case Tok::kEq: op = BinOp::kEq; break;
      case Tok::kNe: op = BinOp::kNe; break;
      default:
        return e;
    }
    const std::size_t off = advance().offset;
    return make_binary(op, std::move(e), parse_add(), off);
  }

  ExprPtr parse_add() {
    auto e = parse_mul();
    for (;;) {
      if (cur().kind == Tok::kPlus) {
        const std::size_t off = advance().offset;
        e = make_binary(BinOp::kAdd, std::move(e), parse_mul(), off);
      } else if (cur().kind == Tok::kMinus) {
        const std::size_t off = advance().offset;
        e = make_binary(BinOp::kSub, std::move(e), parse_mul(), off);
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_mul() {
    auto e = parse_unary();
    for (;;) {
      if (cur().kind == Tok::kStar) {
        const std::size_t off = advance().offset;
        e = make_binary(BinOp::kMul, std::move(e), parse_unary(), off);
      } else if (cur().kind == Tok::kSlash) {
        const std::size_t off = advance().offset;
        e = make_binary(BinOp::kDiv, std::move(e), parse_unary(), off);
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_unary() {
    if (cur().kind == Tok::kMinus || cur().kind == Tok::kNot) {
      auto u = std::make_unique<Expr>();
      u->kind = Expr::Kind::kUnary;
      u->is_not = cur().kind == Tok::kNot;
      u->offset = advance().offset;
      u->lhs = parse_unary();
      return u;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    auto e = parse_primary();
    while (accept(Tok::kLBracket)) {
      if (e->kind == Expr::Kind::kVar) {
        e->kind = Expr::Kind::kArrayRef;
      } else if (e->kind != Expr::Kind::kArrayRef) {
        throw ParseError("subscript on a non-array expression", e->offset);
      }
      e->args.push_back(parse_expr());
      expect(Tok::kRBracket, "subscript");
    }
    return e;
  }

  ExprPtr parse_primary() {
    auto e = std::make_unique<Expr>();
    e->offset = cur().offset;
    if (cur().kind == Tok::kNumber) {
      e->kind = Expr::Kind::kNumber;
      e->number = advance().number;
      return e;
    }
    if (cur().kind == Tok::kIdent) {
      e->name = advance().text;
      if (accept(Tok::kLParen)) {
        e->kind = Expr::Kind::kCall;
        if (!accept(Tok::kRParen)) {
          do {
            e->args.push_back(parse_expr());
          } while (accept(Tok::kComma));
          expect(Tok::kRParen, "call arguments");
        }
      } else {
        e->kind = Expr::Kind::kVar;
      }
      return e;
    }
    if (accept(Tok::kLParen)) {
      auto inner = parse_expr();
      expect(Tok::kRParen, "parenthesized expression");
      return inner;
    }
    throw ParseError("expected an expression, found " +
                         std::string(to_string(cur().kind)),
                     cur().offset);
  }

  static ExprPtr make_binary(BinOp op, ExprPtr a, ExprPtr b,
                             std::size_t off) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->op = op;
    e->lhs = std::move(a);
    e->rhs = std::move(b);
    e->offset = off;
    return e;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

KernelSource parse_kernel(const std::string& source) {
  KernelSource out;
  // Peel leading "#pragma ..." lines (honouring '\' continuations).
  std::size_t pos = 0;
  for (;;) {
    // Skip whitespace.
    while (pos < source.size() &&
           std::isspace(static_cast<unsigned char>(source[pos]))) {
      ++pos;
    }
    if (pos >= source.size() || source[pos] != '#') break;
    std::string line;
    while (pos < source.size()) {
      const char c = source[pos];
      if (c == '\\' && pos + 1 < source.size() &&
          source[pos + 1] == '\n') {
        line += ' ';
        pos += 2;
        continue;
      }
      if (c == '\n') {
        ++pos;
        break;
      }
      line += c;
      ++pos;
    }
    out.pragmas.push_back(std::string(trim(line)));
  }
  HOMP_REQUIRE(!out.pragmas.empty(),
               "kernel source needs at least one HOMP #pragma before the "
               "loop");
  Parser p(lex(source.substr(pos)));
  out.outer = p.parse_outer();
  return out;
}

}  // namespace homp::lang
