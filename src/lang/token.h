#ifndef HOMP_LANG_TOKEN_H
#define HOMP_LANG_TOKEN_H

/// \file token.h
/// Tokens of the HOMP kernel language — the C loop-nest subset the
/// mini-compiler (src/lang) accepts. See lang/compile.h for the overview.

#include <string>
#include <vector>

namespace homp::lang {

enum class Tok {
  kEnd,
  kIdent,
  kNumber,
  // punctuation
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSemi,
  kComma,
  // operators
  kAssign,      // =
  kPlusAssign,  // +=
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPlusPlus,
  kLt,
  kGt,
  kLe,
  kGe,
  kEq,   // ==
  kNe,   // !=
  kOrOr,
  kAndAnd,
  kNot,
  // keywords
  kFor,
  kIf,
  kContinue,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;     ///< identifier name or number literal
  double number = 0.0;  ///< value for kNumber
  std::size_t offset = 0;
};

const char* to_string(Tok t) noexcept;

/// Tokenize kernel source. Throws ParseError on unknown characters.
std::vector<Token> lex(const std::string& source);

}  // namespace homp::lang

#endif  // HOMP_LANG_TOKEN_H
