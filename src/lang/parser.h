#ifndef HOMP_LANG_PARSER_H
#define HOMP_LANG_PARSER_H

/// \file parser.h
/// Recursive-descent parser for the HOMP kernel language. Input is a
/// translation-unit fragment in the shape of the paper's examples:
///
///   #pragma omp parallel target device(0:*) map(...) ...
///   #pragma omp parallel for distribute dist_schedule(target:[AUTO])
///   for (i = 0; i < n; i++) {
///     y[i] = y[i] + a * x[i];
///   }
///
/// Pragma lines are collected verbatim (pragma/parse.h understands them);
/// the loop nest is parsed into lang/ast.h structures.

#include <string>

#include "lang/ast.h"

namespace homp::lang {

/// Parse a kernel fragment. Throws ParseError with a source offset on
/// malformed input.
KernelSource parse_kernel(const std::string& source);

}  // namespace homp::lang

#endif  // HOMP_LANG_PARSER_H
