#ifndef HOMP_LANG_ANALYZE_H
#define HOMP_LANG_ANALYZE_H

/// \file analyze.h
/// Static cost analysis of a parsed kernel — the "parameters ... collected
/// through compiler analysis" of §IV-B2. Counts floating-point operations
/// and memory references *per iteration of the distributed (outer) loop*,
/// which is exactly what the analytical models and Table IV consume.
///
/// Counting rules (documented deviations are deliberate simplifications
/// shared with the paper's accounting):
///  * each arithmetic +,-,*,/ and unary minus on values = 1 FLOP; calls
///    (fabs, sqrt, sin, cos, min, max) = 1 FLOP;
///  * comparisons/logical operators = 0 FLOPs (branch handling);
///  * integer arithmetic inside array subscripts = 0 FLOPs;
///  * every array-element read or write = one 8-byte memory reference;
///    `a[i] += e` counts a read and a write;
///  * `if (...) continue;` guards do not discount the guarded body — the
///    SIMD assumption of §IV-B2 ("execute all the branches even [if]
///    there is divergence");
///  * inner-loop trip counts must be compile-time constants after symbol
///    substitution (dense rectangular nests, as in every Table IV kernel).

#include <map>
#include <string>

#include "lang/ast.h"

namespace homp::lang {

struct CostCounts {
  double flops = 0.0;
  double mem_bytes = 0.0;
};

/// Evaluate an expression that must be constant given `symbols` (loop
/// bounds): numbers, bound symbols and arithmetic only. Throws ConfigError
/// if it references arrays or unknown names.
double eval_const_expr(const Expr& e,
                       const std::map<std::string, double>& symbols);

/// Per-outer-iteration cost of the loop body. `symbols` supplies values
/// for the size symbols appearing in inner-loop bounds (n, m, ...).
CostCounts analyze_body(const ForLoop& outer,
                        const std::map<std::string, double>& symbols);

/// Outer-loop trip count (bound - init) / step, from constant bounds.
long long outer_trip_count(const ForLoop& outer,
                           const std::map<std::string, double>& symbols);

}  // namespace homp::lang

#endif  // HOMP_LANG_ANALYZE_H
