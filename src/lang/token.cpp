#include "lang/token.h"

#include <cctype>

#include "common/error.h"

namespace homp::lang {

const char* to_string(Tok t) noexcept {
  switch (t) {
    case Tok::kEnd: return "<end>";
    case Tok::kIdent: return "identifier";
    case Tok::kNumber: return "number";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kSemi: return "';'";
    case Tok::kComma: return "','";
    case Tok::kAssign: return "'='";
    case Tok::kPlusAssign: return "'+='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPlusPlus: return "'++'";
    case Tok::kLt: return "'<'";
    case Tok::kGt: return "'>'";
    case Tok::kLe: return "'<='";
    case Tok::kGe: return "'>='";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kOrOr: return "'||'";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kNot: return "'!'";
    case Tok::kFor: return "'for'";
    case Tok::kIf: return "'if'";
    case Tok::kContinue: return "'continue'";
  }
  return "?";
}

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto push = [&](Tok k, std::size_t off, std::string text = {}) {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.offset = off;
    out.push_back(std::move(t));
  };
  while (i < n) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) ++i;
      if (i + 1 >= n) throw ParseError("unterminated comment", start);
      i += 2;
      continue;
    }
    const std::size_t off = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                       src[i] == '_')) {
        ident += src[i++];
      }
      if (ident == "for") {
        push(Tok::kFor, off);
      } else if (ident == "if") {
        push(Tok::kIf, off);
      } else if (ident == "continue") {
        push(Tok::kContinue, off);
      } else if (ident == "int" || ident == "double" || ident == "long" ||
                 ident == "REAL" || ident == "float" || ident == "const") {
        // Type keywords in declarations are noise for this subset.
      } else {
        push(Tok::kIdent, off, std::move(ident));
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t pos = 0;
      double v = 0.0;
      try {
        v = std::stod(src.substr(i), &pos);
      } catch (const std::exception&) {
        throw ParseError("malformed number literal", off);
      }
      Token t;
      t.kind = Tok::kNumber;
      t.text = src.substr(i, pos);
      t.number = v;
      t.offset = off;
      out.push_back(std::move(t));
      i += pos;
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && src[i + 1] == b;
    };
    if (two('+', '+')) { push(Tok::kPlusPlus, off); i += 2; continue; }
    if (two('+', '=')) { push(Tok::kPlusAssign, off); i += 2; continue; }
    if (two('<', '=')) { push(Tok::kLe, off); i += 2; continue; }
    if (two('>', '=')) { push(Tok::kGe, off); i += 2; continue; }
    if (two('=', '=')) { push(Tok::kEq, off); i += 2; continue; }
    if (two('!', '=')) { push(Tok::kNe, off); i += 2; continue; }
    if (two('|', '|')) { push(Tok::kOrOr, off); i += 2; continue; }
    if (two('&', '&')) { push(Tok::kAndAnd, off); i += 2; continue; }
    switch (c) {
      case '(': push(Tok::kLParen, off); break;
      case ')': push(Tok::kRParen, off); break;
      case '{': push(Tok::kLBrace, off); break;
      case '}': push(Tok::kRBrace, off); break;
      case '[': push(Tok::kLBracket, off); break;
      case ']': push(Tok::kRBracket, off); break;
      case ';': push(Tok::kSemi, off); break;
      case ',': push(Tok::kComma, off); break;
      case '=': push(Tok::kAssign, off); break;
      case '+': push(Tok::kPlus, off); break;
      case '-': push(Tok::kMinus, off); break;
      case '*': push(Tok::kStar, off); break;
      case '/': push(Tok::kSlash, off); break;
      case '<': push(Tok::kLt, off); break;
      case '>': push(Tok::kGt, off); break;
      case '!': push(Tok::kNot, off); break;
      default:
        throw ParseError("unexpected character '" + std::string(1, c) +
                             "' in kernel source",
                         off);
    }
    ++i;
  }
  push(Tok::kEnd, n);
  return out;
}

}  // namespace homp::lang
