#ifndef HOMP_LANG_COMPILE_H
#define HOMP_LANG_COMPILE_H

/// \file compile.h
/// Front door of the HOMP mini-compiler: turn annotated loop-nest source
/// (the paper's Fig. 1/2/3 shape — HOMP pragmas followed by a canonical
/// for-loop) into a runnable offload. This substitutes for the paper's
/// ROSE-based source-to-source translator (§V-A): the pragmas are parsed
/// by pragma/parse.h, the loop body is outlined into an interpreted
/// kernel (lang/interp.h), and the cost profile the analytical models
/// need is derived from the body by static analysis (lang/analyze.h) —
/// "through compiler analysis", exactly as §IV-B2 describes.
///
///   homp::lang::Scalars consts;
///   consts.let("a", 2.0);
///   auto compiled = homp::lang::compile_kernel(R"(
///     #pragma omp parallel target device(0:*)
///         map(tofrom: y[0:n] partition([ALIGN(loop)]))
///         map(to: x[0:n] partition([ALIGN(loop)]), a, n)
///     #pragma omp parallel for distribute dist_schedule(target:[AUTO])
///     for (i = 0; i < n; i++)
///       y[i] = y[i] + a * x[i];
///   )", bindings, consts, rt.machine());
///   (in real source the pragma spans lines with '\' continuations)
///   auto result = rt.offload(compiled.kernel, compiled.maps,
///                            compiled.options);

#include <map>
#include <memory>
#include <string>

#include "machine/device.h"
#include "pragma/parse.h"
#include "runtime/data_region.h"
#include "runtime/kernel.h"
#include "runtime/options.h"

namespace homp::lang {

/// Captured constant scalars referenced by the kernel body (the `a`,
/// `omega`, ... that OpenMP would firstprivate).
struct Scalars {
  std::map<std::string, double> values;
  void let(const std::string& name, double v) { values[name] = v; }
};

struct CompiledKernel {
  rt::LoopKernel kernel;          ///< cost profile filled by analysis
  std::vector<mem::MapSpec> maps;
  rt::OffloadOptions options;     ///< device list, policies, label, ...
  /// Owning handles keeping the interpreted body alive.
  std::shared_ptr<void> retained;
};

/// Compile annotated source against array/symbol bindings and scalar
/// constants. Throws ParseError / ConfigError on bad input.
CompiledKernel compile_kernel(const std::string& source,
                              const pragma::Bindings& bindings,
                              const Scalars& scalars,
                              const mach::MachineDescriptor& machine,
                              const std::string& name = "compiled");

// ---- data-region programs (the full Fig. 3 shape) ----

/// Result of compiling a `target data` directive: everything
/// Runtime::map_data needs. `options.loop_domain` is derived from
/// `loop_domain_symbol` (e.g. "n" for loops over [0, n)).
struct CompiledRegion {
  std::vector<mem::MapSpec> maps;
  rt::RegionOptions options;
};

CompiledRegion compile_data_region(
    const std::string& pragma_text, const pragma::Bindings& bindings,
    const mach::MachineDescriptor& machine,
    const std::string& loop_domain_symbol,
    sched::AlgorithmKind dist_algorithm = sched::AlgorithmKind::kBlock);

/// A loop to run inside a data region: only the kernel (the region fixed
/// the distribution and owns the data). Map clauses and device lists in
/// the loop's pragmas are tolerated and ignored — Fig. 3's inner loops
/// repeat `target device(*)`, but inside a region the data is resident.
struct CompiledLoop {
  rt::LoopKernel kernel;
  std::shared_ptr<void> retained;
};

CompiledLoop compile_region_loop(const std::string& source,
                                 const pragma::Bindings& bindings,
                                 const Scalars& scalars,
                                 const std::string& name = "region-loop");

}  // namespace homp::lang

#endif  // HOMP_LANG_COMPILE_H
