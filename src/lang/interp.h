#ifndef HOMP_LANG_INTERP_H
#define HOMP_LANG_INTERP_H

/// \file interp.h
/// Tree-walking interpreter for kernel-language loop bodies. This is the
/// "multi-target code generation" substitution (DESIGN.md §2): instead of
/// emitting CUDA/OpenMP/MIC variants, one interpreter executes the body
/// against each device's data environment through global-index views —
/// the index translation the paper's compiler guarantees happens in
/// ArrayView. Intended for correctness runs, not throughput.

#include <map>
#include <memory>
#include <string>

#include "dist/range.h"
#include "lang/ast.h"
#include "memory/data_env.h"

namespace homp::lang {

class BodyInterpreter {
 public:
  /// \param outer        the distributed loop (body is interpreted; the
  ///                     outer induction variable is driven by chunks)
  /// \param scalars      captured constant scalars (a, omega, ...)
  /// \param reduction_var name from reduction(+:var), empty if none
  BodyInterpreter(const ForLoop* outer,
                  std::map<std::string, double> scalars,
                  std::string reduction_var);

  /// Execute iterations [chunk.lo, chunk.hi) of the outer loop against
  /// `env`; returns the chunk's partial reduction value.
  double run_chunk(const dist::Range& chunk, mem::DeviceDataEnv& env) const;

 private:
  struct Frame;
  enum class Flow { kNormal, kContinue };

  double eval(const Expr& e, Frame& f) const;
  long long eval_index(const Expr& e, Frame& f) const;
  Flow exec(const Stmt& s, Frame& f) const;
  Flow exec_block(const std::vector<StmtPtr>& body, Frame& f) const;
  void run_loop(const ForLoop& loop, Frame& f) const;
  void assign(const Expr& target, bool compound, double value,
              Frame& f) const;

  const ForLoop* outer_;
  std::map<std::string, double> scalars_;
  std::string reduction_var_;
};

}  // namespace homp::lang

#endif  // HOMP_LANG_INTERP_H
