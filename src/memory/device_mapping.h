#ifndef HOMP_MEMORY_DEVICE_MAPPING_H
#define HOMP_MEMORY_DEVICE_MAPPING_H

/// \file device_mapping.h
/// Materialization of one mapped array on one device.
///
/// Discrete-memory devices get their own packed storage holding exactly the
/// footprint subregion; copy_in/copy_out move real bytes between the host
/// array and that storage, so a wrong distribution produces wrong results
/// (not just wrong timing). Shared-memory mappings alias host storage —
/// the "share instead of copy" optimization of §V-C — and transfer nothing.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/checksum.h"
#include "dist/range.h"
#include "memory/map_spec.h"
#include "memory/view.h"

namespace homp::mem {

class DeviceMapping {
 public:
  /// \param owned      subregion this device is responsible for writing
  ///                   back (its partition part; whole region if FULL)
  /// \param footprint  subregion that must be readable on the device
  ///                   (owned plus halo; whole region if FULL)
  /// \param shared     alias host memory instead of copying
  /// \param materialize when false, no storage is allocated and copies are
  ///                   no-ops — pure-simulation mode where only the byte
  ///                   accounting is needed
  DeviceMapping(const MapSpec& spec, dist::Region owned,
                dist::Region footprint, bool shared, bool materialize);

  DeviceMapping(DeviceMapping&&) = default;
  DeviceMapping& operator=(DeviceMapping&&) = default;

  const MapSpec& spec() const noexcept { return *spec_; }
  const dist::Region& owned() const noexcept { return owned_; }
  const dist::Region& footprint() const noexcept { return footprint_; }
  bool shared() const noexcept { return shared_; }

  /// Bytes that must cross the interconnect into the device before the
  /// kernel runs (0 for shared mappings or directions without 'to').
  double bytes_in() const noexcept;

  /// Bytes that must cross back after the kernel (0 for shared mappings or
  /// directions without 'from').
  double bytes_out() const noexcept;

  /// Perform the host->device copy of the footprint (no-op when shared or
  /// not materialized).
  void copy_in();

  /// Perform the device->host copy of the owned region.
  void copy_out();

  /// Explicit subregion copies used by halo exchange: move `r` (which must
  /// lie inside the footprint) between local storage and the host array,
  /// regardless of the map direction. No-ops when shared or not
  /// materialized — aliased storage is already coherent.
  void push_to_host(const dist::Region& r);
  void pull_from_host(const dist::Region& r);

  /// Data-integrity hooks (docs/RESILIENCE.md "Integrity"). `r` must lie
  /// inside the footprint. Checksums walk the same innermost-run
  /// traversal as the copies, so device- and host-side sums of intact
  /// data agree. Device-side calls return 0 / no-op when the mapping is
  /// shared or not materialized — aliased or modeled storage has no
  /// separate payload to verify or damage.
  std::uint64_t checksum_device(const dist::Region& r, ChecksumKind kind) const;
  std::uint64_t checksum_host(const dist::Region& r, ChecksumKind kind) const;

  /// Flip a few seeded bytes of `r` in device storage / the host array,
  /// simulating silent corruption (`seed` != 0 selects which bytes and
  /// masks). Host-side corruption refuses shared mappings: there the
  /// host bytes are the kernel's only copy and no re-transfer could
  /// repair them.
  void corrupt_device(const dist::Region& r, std::uint64_t seed);
  void corrupt_host(const dist::Region& r, std::uint64_t seed);

  /// Global-indexed view for kernel execution. Requires materialization
  /// (or shared aliasing). The view covers the footprint.
  template <typename T>
  ArrayView<T> view() {
    HOMP_REQUIRE(spec_->binding.elem_size == sizeof(T),
                 "view element type size mismatch for '" + spec_->name + "'");
    if (shared_) {
      // Aliased host storage: footprint must be the whole array so that
      // packed-footprint strides coincide with host strides (guaranteed by
      // the runtime for shared mappings of partitioned arrays via
      // whole-array footprints on the host device).
      return ArrayView<T>(static_cast<T*>(spec_->binding.base),
                          dist::Region::of_shape(spec_->binding.shape));
    }
    HOMP_REQUIRE(materialized_,
                 "kernel body execution requested on a non-materialized "
                 "mapping of '" +
                     spec_->name + "'");
    return ArrayView<T>(reinterpret_cast<T*>(storage_.data()), footprint_);
  }

 private:
  /// Copy `region` between host array and packed local storage.
  /// to_device=true: host -> local; false: local -> host.
  void copy_region(const dist::Region& region, bool to_device);

  /// Walk `region` as contiguous innermost runs, calling
  /// fn(host_byte_off, local_byte_off, run_bytes) per run — the single
  /// traversal shared by copies, checksums and corruption so all agree
  /// on byte order.
  template <typename Fn>
  void for_each_run(const dist::Region& region, Fn&& fn) const;

  std::uint64_t checksum_side(const dist::Region& r, ChecksumKind kind,
                              bool device_side) const;
  void corrupt_side(const dist::Region& r, std::uint64_t seed,
                    bool device_side);

  const MapSpec* spec_;  // owned by the offload descriptor, outlives this
  dist::Region owned_;
  dist::Region footprint_;
  bool shared_;
  bool materialized_;
  std::vector<std::byte> storage_;
  std::vector<long long> local_strides_;  // packed strides of footprint
};

}  // namespace homp::mem

#endif  // HOMP_MEMORY_DEVICE_MAPPING_H
