#include "memory/map_spec.h"

namespace homp::mem {

const char* to_string(MapDirection d) noexcept {
  switch (d) {
    case MapDirection::kTo:
      return "to";
    case MapDirection::kFrom:
      return "from";
    case MapDirection::kToFrom:
      return "tofrom";
    case MapDirection::kAlloc:
      return "alloc";
  }
  return "?";
}

ArrayBinding phantom_binding(std::size_t elem_size,
                             std::vector<long long> shape) {
  static char sentinel;
  ArrayBinding b;
  b.base = &sentinel;
  b.elem_size = elem_size;
  b.shape = std::move(shape);
  b.strides.assign(b.shape.size(), 1);
  for (std::size_t d = b.shape.size(); d-- > 1;) {
    b.strides[d - 1] = b.strides[d] * b.shape[d];
  }
  return b;
}

void MapSpec::validate() const {
  HOMP_REQUIRE(!name.empty(), "mapped variable needs a name");
  HOMP_REQUIRE(binding.base != nullptr,
               "mapped variable '" + name + "' has no storage bound");
  HOMP_REQUIRE(binding.rank() == region.rank(),
               "mapped region rank does not match array rank for '" + name +
                   "'");
  HOMP_REQUIRE(partition.empty() || partition.size() == region.rank(),
               "partition([...]) must give one policy per dimension for '" +
                   name + "'");
  dist::Region whole = dist::Region::of_shape(binding.shape);
  HOMP_REQUIRE(whole.contains(region),
               "mapped region exceeds array bounds for '" + name + "'");
  int partitioned = 0;
  for (const auto& p : partition) {
    HOMP_REQUIRE(p.kind != dist::PolicyKind::kAuto,
                 "AUTO applies only to loop distribution (Table I); array '" +
                     name + "' cannot use it");
    HOMP_REQUIRE(p.kind != dist::PolicyKind::kCyclic,
                 "CYCLIC applies only to loop distribution; array '" + name +
                     "' cannot use it");
    if (p.kind != dist::PolicyKind::kFull) ++partitioned;
  }
  HOMP_REQUIRE(partitioned <= 1,
               "at most one dimension of '" + name +
                   "' may be partitioned (multi-dim device grids are not "
                   "supported)");
  HOMP_REQUIRE(halo_before >= 0 && halo_after >= 0,
               "halo widths must be non-negative for '" + name + "'");
  if (halo_before > 0 || halo_after > 0) {
    HOMP_REQUIRE(partitioned == 1,
                 "halo on '" + name + "' requires a partitioned dimension");
  }
}

int MapSpec::partitioned_dim() const {
  for (std::size_t d = 0; d < partition.size(); ++d) {
    if (partition[d].kind != dist::PolicyKind::kFull) {
      return static_cast<int>(d);
    }
  }
  return -1;
}

dist::DimPolicy MapSpec::partitioned_policy() const {
  const int d = partitioned_dim();
  return d < 0 ? dist::DimPolicy::full()
               : partition[static_cast<std::size_t>(d)];
}

}  // namespace homp::mem
