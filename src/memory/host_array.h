#ifndef HOMP_MEMORY_HOST_ARRAY_H
#define HOMP_MEMORY_HOST_ARRAY_H

/// \file host_array.h
/// Owning host-side N-dimensional array (rank 1..3, row-major).
///
/// This is the "original" user data that offload regions map from: the
/// equivalent of the plain C arrays in the paper's examples. Device-side
/// copies are materialized by memory/device_mapping.h; kernels access both
/// through memory/view.h with global indices.

#include <cstddef>
#include <vector>

#include "common/error.h"
#include "dist/range.h"

namespace homp::mem {

template <typename T>
class HostArray {
 public:
  HostArray() = default;

  explicit HostArray(std::vector<long long> shape, T init = T{})
      : shape_(std::move(shape)) {
    HOMP_REQUIRE(!shape_.empty() && shape_.size() <= 3,
                 "HostArray supports rank 1..3");
    long long n = 1;
    for (long long e : shape_) {
      HOMP_REQUIRE(e > 0, "HostArray extents must be positive");
      n *= e;
    }
    data_.assign(static_cast<std::size_t>(n), init);
    compute_strides();
  }

  static HostArray vector(long long n, T init = T{}) {
    return HostArray({n}, init);
  }
  static HostArray matrix(long long n, long long m, T init = T{}) {
    return HostArray({n, m}, init);
  }

  std::size_t rank() const noexcept { return shape_.size(); }
  long long extent(std::size_t d) const {
    HOMP_ASSERT(d < shape_.size());
    return shape_[d];
  }
  const std::vector<long long>& shape() const noexcept { return shape_; }
  long long stride(std::size_t d) const {
    HOMP_ASSERT(d < strides_.size());
    return strides_[d];
  }

  long long size() const noexcept {
    return static_cast<long long>(data_.size());
  }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  T& operator()(long long i) {
    HOMP_ASSERT(rank() == 1 && i >= 0 && i < shape_[0]);
    return data_[static_cast<std::size_t>(i)];
  }
  const T& operator()(long long i) const {
    HOMP_ASSERT(rank() == 1 && i >= 0 && i < shape_[0]);
    return data_[static_cast<std::size_t>(i)];
  }
  T& operator()(long long i, long long j) {
    HOMP_ASSERT(rank() == 2 && i >= 0 && i < shape_[0] && j >= 0 &&
                j < shape_[1]);
    return data_[static_cast<std::size_t>(i * strides_[0] + j)];
  }
  const T& operator()(long long i, long long j) const {
    HOMP_ASSERT(rank() == 2 && i >= 0 && i < shape_[0] && j >= 0 &&
                j < shape_[1]);
    return data_[static_cast<std::size_t>(i * strides_[0] + j)];
  }

  /// Whole-array region: [0:extent) in every dimension.
  dist::Region region() const { return dist::Region::of_shape(shape_); }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Fill with f(i) (rank 1) — convenience for tests and examples.
  template <typename F>
  void fill_with_index(F&& f) {
    HOMP_ASSERT(rank() == 1);
    for (long long i = 0; i < shape_[0]; ++i) {
      data_[static_cast<std::size_t>(i)] = f(i);
    }
  }

  /// Fill with f(i, j) (rank 2).
  template <typename F>
  void fill_with_indices(F&& f) {
    HOMP_ASSERT(rank() == 2);
    for (long long i = 0; i < shape_[0]; ++i) {
      for (long long j = 0; j < shape_[1]; ++j) {
        (*this)(i, j) = f(i, j);
      }
    }
  }

 private:
  void compute_strides() {
    strides_.assign(shape_.size(), 1);
    for (std::size_t d = shape_.size(); d-- > 1;) {
      strides_[d - 1] = strides_[d] * shape_[d];
    }
  }

  std::vector<long long> shape_;
  std::vector<long long> strides_;
  std::vector<T> data_;
};

}  // namespace homp::mem

#endif  // HOMP_MEMORY_HOST_ARRAY_H
