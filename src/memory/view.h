#ifndef HOMP_MEMORY_VIEW_H
#define HOMP_MEMORY_VIEW_H

/// \file view.h
/// Global-indexed view over a device-local array slice.
///
/// Kernels are written once against global indices, exactly like the loop
/// bodies in the paper's examples (`y[i] += a * x[i]` with the original i).
/// The paper's compiler "guarantees array references to its original array
/// index spaces are properly translated to references to the array
/// subregion that is mapped to each device" (§V-C); ArrayView is that
/// translation. Out-of-footprint accesses are hard errors — they mean the
/// distribution/alignment machinery mapped too little data, which is
/// precisely the bug class the tests must catch.

#include <array>
#include <cstddef>

#include "common/error.h"
#include "dist/range.h"

namespace homp::mem {

template <typename T>
class ArrayView {
 public:
  ArrayView() = default;

  /// \param base    first element of the local storage, which holds the
  ///                (contiguous, row-major) elements of `footprint`
  /// \param footprint global region present in local storage
  ArrayView(T* base, dist::Region footprint)
      : base_(base), footprint_(std::move(footprint)) {
    HOMP_ASSERT(footprint_.rank() >= 1 && footprint_.rank() <= 3);
    local_strides_.fill(1);
    for (std::size_t d = footprint_.rank(); d-- > 1;) {
      local_strides_[d - 1] =
          local_strides_[d] * footprint_.dim(d).size();
    }
  }

  const dist::Region& footprint() const noexcept { return footprint_; }
  T* local_data() noexcept { return base_; }

  T& operator()(long long i) const {
    HOMP_ASSERT(footprint_.rank() == 1);
    check(0, i);
    return base_[i - footprint_.dim(0).lo];
  }

  T& operator()(long long i, long long j) const {
    HOMP_ASSERT(footprint_.rank() == 2);
    check(0, i);
    check(1, j);
    return base_[(i - footprint_.dim(0).lo) * local_strides_[0] +
                 (j - footprint_.dim(1).lo)];
  }

  T& operator()(long long i, long long j, long long k) const {
    HOMP_ASSERT(footprint_.rank() == 3);
    check(0, i);
    check(1, j);
    check(2, k);
    return base_[(i - footprint_.dim(0).lo) * local_strides_[0] +
                 (j - footprint_.dim(1).lo) * local_strides_[1] +
                 (k - footprint_.dim(2).lo)];
  }

  /// True if global index i (dim 0) is present in the footprint; kernels
  /// with neighbourhood access use this to probe halo availability.
  bool covers(long long i) const noexcept {
    return footprint_.rank() >= 1 && footprint_.dim(0).contains(i);
  }

 private:
  void check(std::size_t d, long long i) const {
    if (!footprint_.dim(d).contains(i)) {
      throw ExecutionError(
          "kernel accessed global index " + std::to_string(i) + " in dim " +
          std::to_string(d) + " outside mapped footprint " +
          footprint_.to_string() +
          " — data distribution/alignment mapped too little data");
    }
  }

  T* base_ = nullptr;
  dist::Region footprint_;
  std::array<long long, 3> local_strides_{1, 1, 1};
};

}  // namespace homp::mem

#endif  // HOMP_MEMORY_VIEW_H
