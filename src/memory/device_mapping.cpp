#include "memory/device_mapping.h"

#include <cstring>

namespace homp::mem {

DeviceMapping::DeviceMapping(const MapSpec& spec, dist::Region owned,
                             dist::Region footprint, bool shared,
                             bool materialize)
    : spec_(&spec),
      owned_(std::move(owned)),
      footprint_(std::move(footprint)),
      shared_(shared),
      materialized_(materialize && !shared) {
  HOMP_REQUIRE(owned_.rank() == spec.region.rank(),
               "owned region rank mismatch for '" + spec.name + "'");
  HOMP_REQUIRE(footprint_.rank() == spec.region.rank(),
               "footprint region rank mismatch for '" + spec.name + "'");
  HOMP_REQUIRE(footprint_.contains(owned_),
               "owned region " + owned_.to_string() +
                   " escapes footprint " + footprint_.to_string() +
                   " for '" + spec.name + "'");
  HOMP_REQUIRE(spec.region.contains(footprint_),
               "footprint " + footprint_.to_string() +
                   " escapes mapped region " + spec.region.to_string() +
                   " for '" + spec.name + "'");
  local_strides_.assign(footprint_.rank(), 1);
  for (std::size_t d = footprint_.rank(); d-- > 1;) {
    local_strides_[d - 1] = local_strides_[d] * footprint_.dim(d).size();
  }
  if (materialized_) {
    storage_.resize(static_cast<std::size_t>(footprint_.volume()) *
                    spec.binding.elem_size);
  }
}

double DeviceMapping::bytes_in() const noexcept {
  if (shared_ || !copies_in(spec_->dir)) return 0.0;
  return static_cast<double>(footprint_.volume()) *
         static_cast<double>(spec_->binding.elem_size);
}

double DeviceMapping::bytes_out() const noexcept {
  if (shared_ || !copies_out(spec_->dir)) return 0.0;
  return static_cast<double>(owned_.volume()) *
         static_cast<double>(spec_->binding.elem_size);
}

void DeviceMapping::copy_in() {
  if (!materialized_ || !copies_in(spec_->dir)) return;
  copy_region(footprint_, /*to_device=*/true);
}

void DeviceMapping::copy_out() {
  if (!materialized_ || !copies_out(spec_->dir)) return;
  copy_region(owned_, /*to_device=*/false);
}

void DeviceMapping::push_to_host(const dist::Region& r) {
  if (!materialized_) return;
  HOMP_REQUIRE(footprint_.contains(r),
               "push_to_host region escapes footprint of '" + spec_->name +
                   "'");
  copy_region(r, /*to_device=*/false);
}

void DeviceMapping::pull_from_host(const dist::Region& r) {
  if (!materialized_) return;
  HOMP_REQUIRE(footprint_.contains(r),
               "pull_from_host region escapes footprint of '" + spec_->name +
                   "'");
  copy_region(r, /*to_device=*/true);
}

template <typename Fn>
void DeviceMapping::for_each_run(const dist::Region& region, Fn&& fn) const {
  if (region.empty()) return;
  const std::size_t esz = spec_->binding.elem_size;
  const auto& hstrides = spec_->binding.strides;
  const std::size_t rank = region.rank();

  // Innermost dimension is contiguous in both layouts (host is row-major,
  // local storage is packed row-major over the footprint), so visit whole
  // innermost runs and loop over the outer dimensions.
  const dist::Range inner = region.dim(rank - 1);
  const std::size_t run_bytes = static_cast<std::size_t>(inner.size()) * esz;

  auto host_off = [&](long long i0, long long i1, long long i2) {
    long long off = 0;
    const long long idx[3] = {i0, i1, i2};
    for (std::size_t d = 0; d < rank; ++d) off += idx[d] * hstrides[d];
    return static_cast<std::size_t>(off) * esz;
  };
  auto local_off = [&](long long i0, long long i1, long long i2) {
    long long off = 0;
    const long long idx[3] = {i0, i1, i2};
    for (std::size_t d = 0; d < rank; ++d) {
      off += (idx[d] - footprint_.dim(d).lo) * local_strides_[d];
    }
    return static_cast<std::size_t>(off) * esz;
  };
  auto visit = [&](long long i0, long long i1, long long i2) {
    fn(host_off(i0, i1, i2), local_off(i0, i1, i2), run_bytes);
  };

  switch (rank) {
    case 1:
      visit(inner.lo, 0, 0);
      break;
    case 2:
      for (long long i = region.dim(0).lo; i < region.dim(0).hi; ++i) {
        visit(i, inner.lo, 0);
      }
      break;
    case 3:
      for (long long i = region.dim(0).lo; i < region.dim(0).hi; ++i) {
        for (long long j = region.dim(1).lo; j < region.dim(1).hi; ++j) {
          visit(i, j, inner.lo);
        }
      }
      break;
    default:
      HOMP_ASSERT(false);
  }
}

void DeviceMapping::copy_region(const dist::Region& region, bool to_device) {
  auto* host = static_cast<std::byte*>(spec_->binding.base);
  for_each_run(region, [&](std::size_t hoff, std::size_t loff,
                           std::size_t run_bytes) {
    std::byte* h = host + hoff;
    std::byte* l = storage_.data() + loff;
    if (to_device) {
      std::memcpy(l, h, run_bytes);
    } else {
      std::memcpy(h, l, run_bytes);
    }
  });
}

std::uint64_t DeviceMapping::checksum_side(const dist::Region& r,
                                           ChecksumKind kind,
                                           bool device_side) const {
  HOMP_REQUIRE(footprint_.contains(r) || r.empty(),
               "checksum region escapes footprint of '" + spec_->name + "'");
  const std::byte* base = device_side
                              ? storage_.data()
                              : static_cast<const std::byte*>(
                                    spec_->binding.base);
  Checksummer c(kind);
  for_each_run(r, [&](std::size_t hoff, std::size_t loff,
                      std::size_t run_bytes) {
    c.update(base + (device_side ? loff : hoff), run_bytes);
  });
  return c.digest();
}

std::uint64_t DeviceMapping::checksum_device(const dist::Region& r,
                                             ChecksumKind kind) const {
  if (shared_ || !materialized_) return 0;
  return checksum_side(r, kind, /*device_side=*/true);
}

std::uint64_t DeviceMapping::checksum_host(const dist::Region& r,
                                           ChecksumKind kind) const {
  if (shared_) return 0;
  return checksum_side(r, kind, /*device_side=*/false);
}

void DeviceMapping::corrupt_side(const dist::Region& r, std::uint64_t seed,
                                 bool device_side) {
  if (seed == 0 || r.empty()) return;
  HOMP_REQUIRE(footprint_.contains(r),
               "corruption region escapes footprint of '" + spec_->name + "'");
  const std::size_t total =
      static_cast<std::size_t>(r.volume()) * spec_->binding.elem_size;
  std::byte* base = device_side
                        ? storage_.data()
                        : static_cast<std::byte*>(spec_->binding.base);
  const std::size_t flips = 1 + static_cast<std::size_t>(seed % 3);
  for (std::size_t f = 0; f < flips; ++f) {
    const std::size_t pos = static_cast<std::size_t>(
        mix64(seed ^ (0x517cc1b727220a95ULL * (f + 1))) % total);
    const std::byte mask =
        static_cast<std::byte>((mix64(seed + f) & 0xff) | 1);  // nonzero
    // Locate `pos` within the run walk and flip it in place.
    std::size_t cum = 0;
    for_each_run(r, [&](std::size_t hoff, std::size_t loff,
                        std::size_t run_bytes) {
      const std::size_t off = device_side ? loff : hoff;
      if (pos >= cum && pos < cum + run_bytes) {
        base[off + (pos - cum)] ^= mask;
      }
      cum += run_bytes;
    });
  }
}

void DeviceMapping::corrupt_device(const dist::Region& r, std::uint64_t seed) {
  if (shared_ || !materialized_) return;
  corrupt_side(r, seed, /*device_side=*/true);
}

void DeviceMapping::corrupt_host(const dist::Region& r, std::uint64_t seed) {
  if (shared_) return;  // aliased: the host copy is the only copy
  corrupt_side(r, seed, /*device_side=*/false);
}

}  // namespace homp::mem
