#include "memory/device_mapping.h"

#include <cstring>

namespace homp::mem {

DeviceMapping::DeviceMapping(const MapSpec& spec, dist::Region owned,
                             dist::Region footprint, bool shared,
                             bool materialize)
    : spec_(&spec),
      owned_(std::move(owned)),
      footprint_(std::move(footprint)),
      shared_(shared),
      materialized_(materialize && !shared) {
  HOMP_REQUIRE(owned_.rank() == spec.region.rank(),
               "owned region rank mismatch for '" + spec.name + "'");
  HOMP_REQUIRE(footprint_.rank() == spec.region.rank(),
               "footprint region rank mismatch for '" + spec.name + "'");
  HOMP_REQUIRE(footprint_.contains(owned_),
               "owned region " + owned_.to_string() +
                   " escapes footprint " + footprint_.to_string() +
                   " for '" + spec.name + "'");
  HOMP_REQUIRE(spec.region.contains(footprint_),
               "footprint " + footprint_.to_string() +
                   " escapes mapped region " + spec.region.to_string() +
                   " for '" + spec.name + "'");
  local_strides_.assign(footprint_.rank(), 1);
  for (std::size_t d = footprint_.rank(); d-- > 1;) {
    local_strides_[d - 1] = local_strides_[d] * footprint_.dim(d).size();
  }
  if (materialized_) {
    storage_.resize(static_cast<std::size_t>(footprint_.volume()) *
                    spec.binding.elem_size);
  }
}

double DeviceMapping::bytes_in() const noexcept {
  if (shared_ || !copies_in(spec_->dir)) return 0.0;
  return static_cast<double>(footprint_.volume()) *
         static_cast<double>(spec_->binding.elem_size);
}

double DeviceMapping::bytes_out() const noexcept {
  if (shared_ || !copies_out(spec_->dir)) return 0.0;
  return static_cast<double>(owned_.volume()) *
         static_cast<double>(spec_->binding.elem_size);
}

void DeviceMapping::copy_in() {
  if (!materialized_ || !copies_in(spec_->dir)) return;
  copy_region(footprint_, /*to_device=*/true);
}

void DeviceMapping::copy_out() {
  if (!materialized_ || !copies_out(spec_->dir)) return;
  copy_region(owned_, /*to_device=*/false);
}

void DeviceMapping::push_to_host(const dist::Region& r) {
  if (!materialized_) return;
  HOMP_REQUIRE(footprint_.contains(r),
               "push_to_host region escapes footprint of '" + spec_->name +
                   "'");
  copy_region(r, /*to_device=*/false);
}

void DeviceMapping::pull_from_host(const dist::Region& r) {
  if (!materialized_) return;
  HOMP_REQUIRE(footprint_.contains(r),
               "pull_from_host region escapes footprint of '" + spec_->name +
                   "'");
  copy_region(r, /*to_device=*/true);
}

void DeviceMapping::copy_region(const dist::Region& region, bool to_device) {
  if (region.empty()) return;
  const std::size_t esz = spec_->binding.elem_size;
  auto* host = static_cast<std::byte*>(spec_->binding.base);
  const auto& hstrides = spec_->binding.strides;
  const std::size_t rank = region.rank();

  // Innermost dimension is contiguous in both layouts (host is row-major,
  // local storage is packed row-major over the footprint), so copy whole
  // innermost runs with memcpy and loop over the outer dimensions.
  const dist::Range inner = region.dim(rank - 1);
  const std::size_t run_bytes = static_cast<std::size_t>(inner.size()) * esz;

  auto host_off = [&](long long i0, long long i1, long long i2) {
    long long off = 0;
    const long long idx[3] = {i0, i1, i2};
    for (std::size_t d = 0; d < rank; ++d) off += idx[d] * hstrides[d];
    return static_cast<std::size_t>(off) * esz;
  };
  auto local_off = [&](long long i0, long long i1, long long i2) {
    long long off = 0;
    const long long idx[3] = {i0, i1, i2};
    for (std::size_t d = 0; d < rank; ++d) {
      off += (idx[d] - footprint_.dim(d).lo) * local_strides_[d];
    }
    return static_cast<std::size_t>(off) * esz;
  };
  auto copy_run = [&](long long i0, long long i1, long long i2) {
    std::byte* h = host + host_off(i0, i1, i2);
    std::byte* l = storage_.data() + local_off(i0, i1, i2);
    if (to_device) {
      std::memcpy(l, h, run_bytes);
    } else {
      std::memcpy(h, l, run_bytes);
    }
  };

  switch (rank) {
    case 1:
      copy_run(inner.lo, 0, 0);
      break;
    case 2:
      for (long long i = region.dim(0).lo; i < region.dim(0).hi; ++i) {
        copy_run(i, inner.lo, 0);
      }
      break;
    case 3:
      for (long long i = region.dim(0).lo; i < region.dim(0).hi; ++i) {
        for (long long j = region.dim(1).lo; j < region.dim(1).hi; ++j) {
          copy_run(i, j, inner.lo);
        }
      }
      break;
    default:
      HOMP_ASSERT(false);
  }
}

}  // namespace homp::mem
