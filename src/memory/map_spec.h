#ifndef HOMP_MEMORY_MAP_SPEC_H
#define HOMP_MEMORY_MAP_SPEC_H

/// \file map_spec.h
/// Declarative description of one `map(...)` clause entry with its
/// optional `partition([...])` parameter and halo — the HOMP extension of
/// §III-3. The runtime turns a MapSpec plus a distribution decision into
/// per-device DeviceMappings.

#include <string>
#include <vector>

#include "common/error.h"
#include "dist/policy.h"
#include "dist/range.h"
#include "memory/host_array.h"

namespace homp::mem {

/// OpenMP map directions (map-type in the standard).
enum class MapDirection { kTo, kFrom, kToFrom, kAlloc };

const char* to_string(MapDirection d) noexcept;

inline bool copies_in(MapDirection d) noexcept {
  return d == MapDirection::kTo || d == MapDirection::kToFrom;
}
inline bool copies_out(MapDirection d) noexcept {
  return d == MapDirection::kFrom || d == MapDirection::kToFrom;
}

/// Type-erased handle on a host array's storage.
struct ArrayBinding {
  void* base = nullptr;
  std::size_t elem_size = 0;
  std::vector<long long> shape;
  std::vector<long long> strides;  // in elements, row-major

  std::size_t rank() const noexcept { return shape.size(); }
};

/// Binding for simulation-only cases: carries shape/element size for byte
/// accounting but no real storage. Valid only with execute_bodies = false;
/// the base pointer is a non-null sentinel that must never be dereferenced
/// (materialize=false mappings never touch it).
ArrayBinding phantom_binding(std::size_t elem_size,
                             std::vector<long long> shape);

template <typename T>
ArrayBinding bind_array(HostArray<T>& a) {
  ArrayBinding b;
  b.base = a.data();
  b.elem_size = sizeof(T);
  b.shape = a.shape();
  b.strides.resize(a.rank());
  for (std::size_t d = 0; d < a.rank(); ++d) b.strides[d] = a.stride(d);
  return b;
}

struct MapSpec {
  std::string name;  ///< symbol name; ALIGN targets refer to this
  MapDirection dir = MapDirection::kTo;
  ArrayBinding binding;

  /// Mapped subregion of the array (the `y[0:n]` part); usually the whole
  /// array.
  dist::Region region;

  /// Per-dimension distribution policy; empty means FULL in every dim.
  /// At most one dimension may carry a partitioning (non-FULL) policy;
  /// that matches every use in the paper (e.g. `partition([ALIGN(loop1)],
  /// FULL)` for 2-D arrays) and keeps device data contiguous per row block.
  std::vector<dist::DimPolicy> partition;

  /// Halo widths applied to the partitioned dimension (the `halo(1,)`
  /// annotation on uold in Fig. 3). halo(1,) means before=1, after=1 —
  /// an omitted side defaults to the given one.
  long long halo_before = 0;
  long long halo_after = 0;

  /// Validates rank consistency and the single-partitioned-dim rule.
  void validate() const;

  /// Index of the dimension with a non-FULL policy, or -1 if fully
  /// replicated.
  int partitioned_dim() const;

  /// The policy of the partitioned dimension (FULL if none).
  dist::DimPolicy partitioned_policy() const;

  double region_bytes() const {
    return static_cast<double>(region.volume()) *
           static_cast<double>(binding.elem_size);
  }
};

}  // namespace homp::mem

#endif  // HOMP_MEMORY_MAP_SPEC_H
