#include "memory/data_env.h"

#include "common/error.h"

namespace homp::mem {

void DeviceDataEnv::add(const std::string& name, DeviceMapping* mapping) {
  HOMP_ASSERT(mapping != nullptr);
  HOMP_REQUIRE(maps_.emplace(name, mapping).second,
               "variable '" + name + "' mapped twice in one environment");
}

DeviceMapping& DeviceDataEnv::mapping(const std::string& name) const {
  auto it = maps_.find(name);
  HOMP_REQUIRE(it != maps_.end(),
               "variable '" + name + "' is not mapped in this offload");
  return *it->second;
}

double DeviceDataEnv::total_bytes_in() const {
  double total = 0.0;
  for (const auto& [_, m] : maps_) total += m->bytes_in();
  return total;
}

double DeviceDataEnv::total_bytes_out() const {
  double total = 0.0;
  for (const auto& [_, m] : maps_) total += m->bytes_out();
  return total;
}

void DeviceDataEnv::copy_in_all() const {
  for (const auto& [_, m] : maps_) m->copy_in();
}

void DeviceDataEnv::copy_out_all() const {
  for (const auto& [_, m] : maps_) m->copy_out();
}

std::uint64_t DeviceDataEnv::checksum_out_device(ChecksumKind kind) const {
  std::uint64_t h = 0;
  for (const auto& [_, m] : maps_) {
    if (m->shared() || !copies_out(m->spec().dir)) continue;
    h = mix64(h ^ m->checksum_device(m->owned(), kind));
  }
  return h;
}

std::uint64_t DeviceDataEnv::checksum_out_host(ChecksumKind kind) const {
  std::uint64_t h = 0;
  for (const auto& [_, m] : maps_) {
    if (m->shared() || !copies_out(m->spec().dir)) continue;
    h = mix64(h ^ m->checksum_host(m->owned(), kind));
  }
  return h;
}

std::vector<std::string> DeviceDataEnv::names() const {
  std::vector<std::string> out;
  out.reserve(maps_.size());
  for (const auto& [k, _] : maps_) out.push_back(k);
  return out;
}

}  // namespace homp::mem
