#ifndef HOMP_MEMORY_DATA_ENV_H
#define HOMP_MEMORY_DATA_ENV_H

/// \file data_env.h
/// Per-device data environment: the set of DeviceMappings a kernel chunk
/// executes against, looked up by variable name — the simulated analogue
/// of the device-resident data environment OpenMP builds around a target
/// region.
///
/// Environments are *views*: the mappings themselves live in a
/// MappingStore owned by the offload execution. With pipelined chunk
/// scheduling, two chunks of the same array can be in flight on one device
/// (one computing, one prefetching), so each chunk gets its own
/// environment combining the device's static mappings with that chunk's
/// slice mappings.

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "memory/device_mapping.h"

namespace homp::mem {

/// Stable-address owner of DeviceMappings (std::deque never relocates).
class MappingStore {
 public:
  template <typename... Args>
  DeviceMapping& create(Args&&... args) {
    return store_.emplace_back(std::forward<Args>(args)...);
  }

  std::size_t size() const noexcept { return store_.size(); }

 private:
  std::deque<DeviceMapping> store_;
};

class DeviceDataEnv {
 public:
  DeviceDataEnv() = default;

  /// Register a mapping under `name`; names must be unique per env.
  void add(const std::string& name, DeviceMapping* mapping);

  /// New env containing this env's mappings — the base for a per-chunk
  /// overlay.
  DeviceDataEnv fork() const { return *this; }

  bool contains(const std::string& name) const {
    return maps_.count(name) != 0;
  }

  DeviceMapping& mapping(const std::string& name) const;

  /// Global-indexed view of a mapped array for kernel bodies.
  template <typename T>
  ArrayView<T> view(const std::string& name) const {
    return mapping(name).view<T>();
  }

  /// Total interconnect bytes for copy-in / copy-out of all mappings.
  double total_bytes_in() const;
  double total_bytes_out() const;

  void copy_in_all() const;
  void copy_out_all() const;

  /// Combined checksum over the owned regions of every mapping that
  /// copies out, on the device / host side. Shared mappings are skipped
  /// on *both* sides (they cross no wire, so there is nothing to
  /// verify), keeping the two sums comparable. Iterates in name order,
  /// so the combination is deterministic.
  std::uint64_t checksum_out_device(ChecksumKind kind) const;
  std::uint64_t checksum_out_host(ChecksumKind kind) const;

  std::vector<std::string> names() const;
  std::size_t size() const noexcept { return maps_.size(); }

 private:
  std::map<std::string, DeviceMapping*> maps_;
};

}  // namespace homp::mem

#endif  // HOMP_MEMORY_DATA_ENV_H
