#ifndef HOMP_COMMON_TABLE_H
#define HOMP_COMMON_TABLE_H

/// \file table.h
/// Plain-text table writer used by the benchmark harnesses to print
/// paper-style tables (Figure 5/8/9 rows, Table IV/V) to stdout.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace homp {

/// Accumulates rows of string cells and renders them with aligned columns.
/// Numeric helpers format with fixed precision so table output is diffable
/// across runs of the deterministic simulator.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Begin a new row; subsequent cell() calls append to it.
  TextTable& row();
  TextTable& cell(const std::string& s);
  TextTable& cell(const char* s);
  TextTable& cell(double v, int precision = 2);
  TextTable& cell(long long v);
  TextTable& cell(std::size_t v);

  /// Render with a header rule, column padding, and a trailing newline.
  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace homp

#endif  // HOMP_COMMON_TABLE_H
