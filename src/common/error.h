#ifndef HOMP_COMMON_ERROR_H
#define HOMP_COMMON_ERROR_H

/// \file error.h
/// Error types and contract-check macros used across the HOMP library.
///
/// HOMP is a runtime library: user mistakes (bad pragma syntax, inconsistent
/// distributions, out-of-range device ids) are reported as exceptions derived
/// from homp::Error so applications can recover or print diagnostics.
/// Internal invariant violations abort via HOMP_ASSERT in debug builds.

#include <stdexcept>
#include <string>

namespace homp {

/// Base class for all errors raised by the HOMP runtime.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A malformed HOMP directive string (lexical or syntactic).
class ParseError : public Error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : Error(what + " (at offset " + std::to_string(offset) + ")"),
        offset_(offset) {}

  /// Byte offset into the directive string where the error was detected.
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Semantically invalid configuration: unknown device, inconsistent
/// distribution, alignment cycle, map of an unmapped symbol, ...
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Failure inside an offload execution (kernel raised, buffer mismatch).
class ExecutionError : public Error {
 public:
  using Error::Error;
};

/// Classification of an unrecoverable offload failure. This is the error
/// class a serving layer stamps on the job's terminal kFail record
/// (docs/SERVING.md): operators aggregate by class, and the tenant
/// circuit breaker counts them uniformly.
enum class FailClass {
  kUnspecified = 0,
  kAllDevicesLost,   ///< every granted device withdrawn mid-offload
  kQuorumExhausted,  ///< integrity quorum unreachable within its budget
  kMaxAttempts,      ///< per-chunk retry budget exhausted
  kStepBudget,       ///< step-budget watchdog tripped (livelock)
  kValidation,       ///< materialized results failed verification
  kDeadlineMiss,     ///< cancelled: admitted deadline blown mid-run
};

/// Stable lowercase name ("quorum_exhausted", ...) used in reports,
/// summary JSON and trace tooling.
const char* fail_class_name(FailClass c) noexcept;

/// The offload can no longer make progress: every device that could serve
/// the remaining iterations has been withdrawn (quarantined or
/// deactivated), a retry/quorum budget ran out, or the step-budget
/// watchdog tripped. Raised instead of spinning or deadlocking the
/// engine; carries a FailClass so containment layers can classify it.
class OffloadError : public ExecutionError {
 public:
  explicit OffloadError(const std::string& what,
                        FailClass cls = FailClass::kUnspecified)
      : ExecutionError(what), class_(cls) {}

  FailClass fail_class() const noexcept { return class_; }

 private:
  FailClass class_;
};

namespace detail {
[[noreturn]] void throw_config_error(const char* expr, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void assert_fail(const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace homp

/// Validate a user-facing precondition; throws homp::ConfigError on failure.
#define HOMP_REQUIRE(expr, msg)                                             \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::homp::detail::throw_config_error(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (false)

/// Internal invariant; aborts with a message. Enabled in all build types:
/// the simulator must never silently produce wrong schedules.
#define HOMP_ASSERT(expr)                                          \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::homp::detail::assert_fail(#expr, __FILE__, __LINE__);      \
    }                                                              \
  } while (false)

#endif  // HOMP_COMMON_ERROR_H
