#ifndef HOMP_COMMON_ERROR_H
#define HOMP_COMMON_ERROR_H

/// \file error.h
/// Error types and contract-check macros used across the HOMP library.
///
/// HOMP is a runtime library: user mistakes (bad pragma syntax, inconsistent
/// distributions, out-of-range device ids) are reported as exceptions derived
/// from homp::Error so applications can recover or print diagnostics.
/// Internal invariant violations abort via HOMP_ASSERT in debug builds.

#include <stdexcept>
#include <string>

namespace homp {

/// Base class for all errors raised by the HOMP runtime.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A malformed HOMP directive string (lexical or syntactic).
class ParseError : public Error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : Error(what + " (at offset " + std::to_string(offset) + ")"),
        offset_(offset) {}

  /// Byte offset into the directive string where the error was detected.
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Semantically invalid configuration: unknown device, inconsistent
/// distribution, alignment cycle, map of an unmapped symbol, ...
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Failure inside an offload execution (kernel raised, buffer mismatch).
class ExecutionError : public Error {
 public:
  using Error::Error;
};

/// The offload can no longer make progress: every device that could serve
/// the remaining iterations has been withdrawn (quarantined or
/// deactivated). Raised instead of spinning or deadlocking the engine.
class OffloadError : public ExecutionError {
 public:
  using ExecutionError::ExecutionError;
};

namespace detail {
[[noreturn]] void throw_config_error(const char* expr, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void assert_fail(const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace homp

/// Validate a user-facing precondition; throws homp::ConfigError on failure.
#define HOMP_REQUIRE(expr, msg)                                             \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::homp::detail::throw_config_error(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (false)

/// Internal invariant; aborts with a message. Enabled in all build types:
/// the simulator must never silently produce wrong schedules.
#define HOMP_ASSERT(expr)                                          \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::homp::detail::assert_fail(#expr, __FILE__, __LINE__);      \
    }                                                              \
  } while (false)

#endif  // HOMP_COMMON_ERROR_H
