#ifndef HOMP_COMMON_STRINGS_H
#define HOMP_COMMON_STRINGS_H

/// \file strings.h
/// String helpers shared by the pragma parser and the machine-description
/// file reader.

#include <string>
#include <string_view>
#include <vector>

namespace homp {

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Split on `sep`, trimming each piece. Empty pieces are preserved
/// ("a,,b" -> {"a", "", "b"}) so callers can diagnose stray separators.
std::vector<std::string> split(std::string_view s, char sep);

/// Split on `sep` but only at depth zero with respect to (), [] nesting —
/// needed for clause lists like "map(to: x[0:n] partition([BLOCK]), a, n)".
std::vector<std::string> split_top_level(std::string_view s, char sep);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Case-insensitive equality for ASCII.
bool iequals(std::string_view a, std::string_view b);

/// Concatenate `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Parse a non-negative integer with a suffix multiplier (k/K=1e3, m/M=1e6,
/// g/G=1e9), used for workload sizes like "300M" and "48k".
/// Throws homp::ConfigError on malformed input.
long long parse_scaled_int(std::string_view s);

/// Render bytes with a binary-unit suffix for diagnostics ("1.50 MiB").
std::string format_bytes(double bytes);

/// Render seconds adaptively ("12.3 us", "4.56 ms", "1.23 s").
std::string format_seconds(double seconds);

}  // namespace homp

#endif  // HOMP_COMMON_STRINGS_H
