#include "common/log.h"

#include <cstdio>
#include <mutex>

namespace homp {

LogLevel Log::level_ = LogLevel::kWarn;

void Log::write(LogLevel lvl, const std::string& msg) {
  if (lvl < level_) return;
  static std::mutex mu;
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[homp %s] %s\n", names[static_cast<int>(lvl)],
               msg.c_str());
}

}  // namespace homp
