#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace homp {

namespace {

std::mutex& log_mutex() {
  static std::mutex mu;
  return mu;
}

Log::Sink& sink_slot() {
  static Log::Sink sink;
  return sink;
}

char lower(char c) noexcept {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

}  // namespace

LogLevel Log::level_ = LogLevel::kWarn;

bool Log::parse(std::string_view text, LogLevel* out) noexcept {
  if (iequals(text, "debug")) {
    *out = LogLevel::kDebug;
  } else if (iequals(text, "info")) {
    *out = LogLevel::kInfo;
  } else if (iequals(text, "warn") || iequals(text, "warning")) {
    *out = LogLevel::kWarn;
  } else if (iequals(text, "error")) {
    *out = LogLevel::kError;
  } else if (iequals(text, "off")) {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

void Log::init_from_env() {
  const char* env = std::getenv("HOMP_LOG_LEVEL");
  if (env == nullptr) return;
  LogLevel lvl;
  if (parse(env, &lvl)) level_ = lvl;
  // An unparseable value keeps the current level: a typo in the
  // environment must not silence error reporting.
}

namespace {
// Apply HOMP_LOG_LEVEL before main() — level_ is defined above, so its
// constant-initialized default is already in place.
[[maybe_unused]] const bool env_applied = [] {
  Log::init_from_env();
  return true;
}();
}  // namespace

void Log::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(log_mutex());
  sink_slot() = std::move(sink);
}

void Log::write(LogLevel lvl, const std::string& msg) {
  if (lvl < level_ || lvl >= LogLevel::kOff) return;
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard<std::mutex> lock(log_mutex());
  if (const Sink& sink = sink_slot()) {
    sink(lvl, msg);
    return;
  }
  std::fprintf(stderr, "[homp %s] %s\n", names[static_cast<int>(lvl)],
               msg.c_str());
}

}  // namespace homp
