#include "common/stats.h"

#include <algorithm>
#include <numeric>

namespace homp {

Imbalance imbalance_of(const std::vector<double>& device_times) {
  Imbalance im;
  if (device_times.empty()) return im;
  im.max_time = *std::max_element(device_times.begin(), device_times.end());
  im.mean_time =
      std::accumulate(device_times.begin(), device_times.end(), 0.0) /
      static_cast<double>(device_times.size());
  return im;
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x <= 0.0) continue;
    log_sum += std::log(x);
    ++n;
  }
  return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

}  // namespace homp
