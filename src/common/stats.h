#ifndef HOMP_COMMON_STATS_H
#define HOMP_COMMON_STATS_H

/// \file stats.h
/// Streaming statistics accumulators and load-imbalance metrics used by the
/// runtime profiler (Figure 6 breakdown) and the benchmark harnesses.

#include <cmath>
#include <cstddef>
#include <vector>

namespace homp {

/// Welford streaming mean/variance with min/max.
class Accumulator {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Load-imbalance metrics over per-device completion times, as the paper
/// reports in Figure 6 ("percentage of the incurred load imbalance").
///
/// imbalance = (max - mean) / max, in [0, 1): 0 means perfectly balanced.
/// This matches the usual definition of the fraction of the critical-path
/// time the average device spends idle at the barrier.
struct Imbalance {
  double max_time = 0.0;
  double mean_time = 0.0;

  double fraction() const noexcept {
    // Summation rounding can push the mean a few ulps above the max when
    // every device finishes at the same instant; clamp so the documented
    // [0, 1) contract holds.
    const double f = max_time > 0.0 ? (max_time - mean_time) / max_time : 0.0;
    return f > 0.0 ? f : 0.0;
  }
  double percent() const noexcept { return fraction() * 100.0; }
};

/// Compute imbalance over per-device busy times. Empty input yields zeros.
Imbalance imbalance_of(const std::vector<double>& device_times);

/// Geometric mean; returns 0 for empty input, ignores non-positive entries
/// guarded by HOMP_ASSERT upstream.
double geomean(const std::vector<double>& xs);

/// The p-th percentile (p in [0, 100]) with linear interpolation between
/// closest ranks, over a copy of `xs` (sorted internally). Returns 0 for
/// empty input. Used by the benchmark harnesses to report tail latency of
/// fault-degraded runs.
double percentile(std::vector<double> xs, double p);

}  // namespace homp

#endif  // HOMP_COMMON_STATS_H
