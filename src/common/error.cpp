#include "common/error.h"

#include <cstdio>
#include <cstdlib>

namespace homp::detail {

void throw_config_error(const char* expr, const char* file, int line,
                        const std::string& msg) {
  throw ConfigError(msg + " [" + expr + " failed at " + file + ":" +
                    std::to_string(line) + "]");
}

void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "HOMP internal assertion failed: %s at %s:%d\n", expr,
               file, line);
  std::abort();
}

}  // namespace homp::detail
