#include "common/error.h"

#include <cstdio>
#include <cstdlib>

namespace homp {

const char* fail_class_name(FailClass c) noexcept {
  switch (c) {
    case FailClass::kUnspecified:
      return "unspecified";
    case FailClass::kAllDevicesLost:
      return "all_devices_lost";
    case FailClass::kQuorumExhausted:
      return "quorum_exhausted";
    case FailClass::kMaxAttempts:
      return "max_attempts";
    case FailClass::kStepBudget:
      return "step_budget";
    case FailClass::kValidation:
      return "validation";
    case FailClass::kDeadlineMiss:
      return "deadline_miss";
  }
  return "unspecified";
}

}  // namespace homp

namespace homp::detail {

void throw_config_error(const char* expr, const char* file, int line,
                        const std::string& msg) {
  throw ConfigError(msg + " [" + expr + " failed at " + file + ":" +
                    std::to_string(line) + "]");
}

void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "HOMP internal assertion failed: %s at %s:%d\n", expr,
               file, line);
  std::abort();
}

}  // namespace homp::detail
