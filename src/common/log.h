#ifndef HOMP_COMMON_LOG_H
#define HOMP_COMMON_LOG_H

/// \file log.h
/// Minimal leveled logger. The HOMP runtime logs scheduling decisions at
/// Debug level and unusual conditions (cutoff removals, fallback paths) at
/// Info/Warn. Logging defaults to Warn so library users see nothing during
/// normal operation; tests and benches raise the level explicitly, or set
/// the HOMP_LOG_LEVEL environment variable (debug|info|warn|error|off,
/// case-insensitive), which is applied once at process startup.
///
/// Thread-safety contract: write() may be called from any thread — lines
/// are serialized through an internal mutex and never interleave.
/// Reconfiguration (set_level, set_sink) is NOT safe concurrently with
/// logging: configure once at startup, before spawning threads that log.

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace homp {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log configuration (see file comment for thread safety).
class Log {
 public:
  /// Receives every emitted line (already level-filtered), under the
  /// logger's mutex — keep it fast and non-reentrant (a sink that logs
  /// would deadlock).
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel level() noexcept { return level_; }
  static void set_level(LogLevel lvl) noexcept { level_ = lvl; }

  /// Redirect output; an empty sink restores the default stderr writer.
  static void set_sink(Sink sink);

  /// Parse "debug" / "info" / "warn" / "error" / "off" (any case) into
  /// `out`; false (and `out` untouched) for anything else.
  static bool parse(std::string_view text, LogLevel* out) noexcept;

  /// Apply HOMP_LOG_LEVEL from the environment, if set and valid. Runs
  /// automatically at static-initialization time; callable again after a
  /// test has overridden the level.
  static void init_from_env();

  /// Emit one line at `lvl` (no-op if below the configured level).
  static void write(LogLevel lvl, const std::string& msg);

 private:
  static LogLevel level_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Log::write(lvl_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace homp

#define HOMP_LOG(lvl)                                     \
  if (::homp::Log::level() > ::homp::LogLevel::lvl) {     \
  } else                                                  \
    ::homp::detail::LogLine(::homp::LogLevel::lvl)

#define HOMP_DEBUG HOMP_LOG(kDebug)
#define HOMP_INFO HOMP_LOG(kInfo)
#define HOMP_WARN HOMP_LOG(kWarn)
#define HOMP_ERROR HOMP_LOG(kError)

#endif  // HOMP_COMMON_LOG_H
