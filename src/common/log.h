#ifndef HOMP_COMMON_LOG_H
#define HOMP_COMMON_LOG_H

/// \file log.h
/// Minimal leveled logger. The HOMP runtime logs scheduling decisions at
/// Debug level and unusual conditions (cutoff removals, fallback paths) at
/// Info/Warn. Logging defaults to Warn so library users see nothing during
/// normal operation; tests and benches raise the level explicitly.

#include <sstream>
#include <string>

namespace homp {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log configuration. Not thread-safe to reconfigure while
/// logging concurrently; set once at startup.
class Log {
 public:
  static LogLevel level() noexcept { return level_; }
  static void set_level(LogLevel lvl) noexcept { level_ = lvl; }

  /// Emit one line at `lvl` (no-op if below the configured level).
  static void write(LogLevel lvl, const std::string& msg);

 private:
  static LogLevel level_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Log::write(lvl_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace homp

#define HOMP_LOG(lvl)                                     \
  if (::homp::Log::level() > ::homp::LogLevel::lvl) {     \
  } else                                                  \
    ::homp::detail::LogLine(::homp::LogLevel::lvl)

#define HOMP_DEBUG HOMP_LOG(kDebug)
#define HOMP_INFO HOMP_LOG(kInfo)
#define HOMP_WARN HOMP_LOG(kWarn)
#define HOMP_ERROR HOMP_LOG(kError)

#endif  // HOMP_COMMON_LOG_H
