#include "common/checksum.h"

#include <cstring>

namespace homp {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t load_word(const unsigned char* p) noexcept {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof w);
  return w;
}

}  // namespace

const char* to_string(ChecksumKind kind) noexcept {
  switch (kind) {
    case ChecksumKind::kFnv1a:
      return "fnv1a";
    case ChecksumKind::kMix64:
      return "mix64";
  }
  return "?";
}

Checksummer::Checksummer(ChecksumKind kind) noexcept
    : kind_(kind),
      state_(kind == ChecksumKind::kFnv1a ? kFnvOffset : 0) {}

void Checksummer::update(const void* data, std::size_t bytes) noexcept {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  total_ += bytes;
  if (kind_ == ChecksumKind::kFnv1a) {
    std::uint64_t h = state_;
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= kFnvPrime;
    }
    state_ = h;
    return;
  }
  // kMix64: absorb 8-byte words; buffer the tail so digests do not
  // depend on update() segmentation.
  if (carry_len_ != 0) {
    while (carry_len_ < 8 && bytes > 0) {
      carry_[carry_len_++] = *p++;
      --bytes;
    }
    if (carry_len_ < 8) return;
    state_ = mix64(state_ ^ load_word(carry_));
    carry_len_ = 0;
  }
  std::uint64_t h = state_;
  while (bytes >= 8) {
    h = mix64(h ^ load_word(p));
    p += 8;
    bytes -= 8;
  }
  state_ = h;
  while (bytes > 0) {
    carry_[carry_len_++] = *p++;
    --bytes;
  }
}

std::uint64_t Checksummer::digest() const noexcept {
  if (kind_ == ChecksumKind::kFnv1a) {
    // Fold in the length so prefixes of each other differ.
    std::uint64_t h = state_;
    h ^= total_;
    h *= kFnvPrime;
    return h;
  }
  std::uint64_t h = state_;
  if (carry_len_ != 0) {
    unsigned char tail[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::memcpy(tail, carry_, carry_len_);
    h = mix64(h ^ load_word(tail));
  }
  return mix64(h ^ total_);
}

std::uint64_t checksum_bytes(ChecksumKind kind, const void* data,
                             std::size_t bytes) noexcept {
  Checksummer c(kind);
  c.update(data, bytes);
  return c.digest();
}

}  // namespace homp
