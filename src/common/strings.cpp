#include "common/strings.h"

#include <cctype>
#include <cstdio>

#include "common/error.h"

namespace homp {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_top_level(std::string_view s, char sep) {
  std::vector<std::string> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || (s[i] == sep && depth == 0)) {
      out.emplace_back(trim(s.substr(start, i - start)));
      start = i + 1;
      continue;
    }
    const char c = s[i];
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

long long parse_scaled_int(std::string_view raw) {
  std::string_view s = trim(raw);
  HOMP_REQUIRE(!s.empty(), "empty integer literal");
  long long mult = 1;
  const char last = s.back();
  if (last == 'k' || last == 'K') {
    mult = 1000;
    s.remove_suffix(1);
  } else if (last == 'm' || last == 'M') {
    mult = 1000000;
    s.remove_suffix(1);
  } else if (last == 'g' || last == 'G') {
    mult = 1000000000;
    s.remove_suffix(1);
  }
  HOMP_REQUIRE(!s.empty(), "integer literal is only a suffix: '" +
                               std::string(raw) + "'");
  long long value = 0;
  for (char c : s) {
    HOMP_REQUIRE(c >= '0' && c <= '9',
                 "malformed integer literal: '" + std::string(raw) + "'");
    value = value * 10 + (c - '0');
  }
  return value * mult;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out += parts[i];
  }
  return out;
}

std::string format_bytes(double bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f %s", bytes, units[u]);
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[48];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof buf, "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", seconds);
  }
  return buf;
}

}  // namespace homp
