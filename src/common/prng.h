#ifndef HOMP_COMMON_PRNG_H
#define HOMP_COMMON_PRNG_H

/// \file prng.h
/// Small deterministic PRNG (xoshiro256**) used for reproducible noise in
/// the device performance model and for randomized property tests.
/// std::mt19937 is avoided in the simulator hot path: xoshiro is faster and
/// its state is trivially copyable, which the discrete-event engine relies
/// on when forking per-device noise streams from one seed.

#include <cstdint>

namespace homp {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, adapted).
class Prng {
 public:
  /// Seeds via splitmix64 so that nearby seeds give unrelated streams.
  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept { return next_u64() % n; }

  /// Approximately normal(0, 1) via sum of uniforms (Irwin-Hall, 12 terms).
  /// Accurate enough for modelling execution-time jitter; avoids
  /// transcendental calls in the hot path.
  double next_gaussian() noexcept {
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) acc += next_double();
    return acc - 6.0;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace homp

#endif  // HOMP_COMMON_PRNG_H
