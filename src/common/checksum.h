#ifndef HOMP_COMMON_CHECKSUM_H
#define HOMP_COMMON_CHECKSUM_H

/// \file checksum.h
/// Fast payload checksums for the data-integrity layer
/// (docs/RESILIENCE.md "Integrity").
///
/// Two pluggable kinds:
///  * kFnv1a — canonical 64-bit FNV-1a, byte at a time. Slow but a
///    well-known reference; useful to cross-check the fast path.
///  * kMix64 — 8 bytes per step through the splitmix64 finalizer.
///    The default: cheap enough that verifying every chunk payload
///    stays within the < 3% runtime-overhead budget.
///
/// Checksums are *error-detection* codes, not cryptographic digests:
/// the adversary is a flipped DMA bit, not an attacker.

#include <cstddef>
#include <cstdint>

namespace homp {

enum class ChecksumKind {
  kFnv1a,
  kMix64,
};

const char* to_string(ChecksumKind kind) noexcept;

/// splitmix64 finalizer — a cheap, well-distributed 64-bit mixer. Also
/// used to derive corruption seeds and to combine per-array checksums
/// into one value. mix64(x) == 0 has a single preimage, so callers that
/// need a guaranteed-nonzero value OR in a low bit themselves.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Streaming checksummer. Results are independent of how the input is
/// split across update() calls, so a strided region can be fed run by
/// run and compared against a contiguous traversal of the same bytes.
class Checksummer {
 public:
  explicit Checksummer(ChecksumKind kind) noexcept;

  void update(const void* data, std::size_t bytes) noexcept;

  /// Final value; includes the total length, so "abc" and "abc\0"
  /// differ. May be called repeatedly (update() between calls is fine).
  std::uint64_t digest() const noexcept;

  ChecksumKind kind() const noexcept { return kind_; }

 private:
  ChecksumKind kind_;
  std::uint64_t state_;
  std::uint64_t total_ = 0;
  unsigned char carry_[8];  ///< kMix64: partial word between updates
  std::size_t carry_len_ = 0;
};

/// One-shot convenience over a contiguous buffer.
std::uint64_t checksum_bytes(ChecksumKind kind, const void* data,
                             std::size_t bytes) noexcept;

}  // namespace homp

#endif  // HOMP_COMMON_CHECKSUM_H
