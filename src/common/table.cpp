#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace homp {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(const std::string& s) {
  HOMP_ASSERT(!rows_.empty());
  rows_.back().push_back(s);
  return *this;
}

TextTable& TextTable::cell(const char* s) { return cell(std::string(s)); }

TextTable& TextTable::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return cell(std::string(buf));
}

TextTable& TextTable::cell(long long v) { return cell(std::to_string(v)); }

TextTable& TextTable::cell(std::size_t v) { return cell(std::to_string(v)); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << s;
      if (c + 1 < widths.size()) {
        os << std::string(widths[c] - s.size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace homp
