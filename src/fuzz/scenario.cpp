#include "fuzz/scenario.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/checksum.h"
#include "common/error.h"
#include "common/strings.h"
#include "kernels/case.h"

namespace homp::fuzz {

namespace {

/// All numeric fields of the synthesized machine must survive
/// mach::to_text's %.6g formatting byte-exactly, or a replayed repro
/// would run against a *slightly* different machine and walk a different
/// fault trajectory. The generator therefore only ever emits values off
/// these quantization helpers.
double q3(Prng& rng, double lo, double hi) {
  // Multiples of 1/1000 of the span anchor — at most 6 significant
  // digits for the ranges used here.
  const double step = (hi - lo) / 1000.0;
  return lo + step * static_cast<double>(rng.below(1001));
}

long long irange(Prng& rng, long long lo, long long hi) {
  return lo + static_cast<long long>(
                  rng.below(static_cast<std::uint64_t>(hi - lo + 1)));
}

double rate(Prng& rng, double cap) {
  // Multiples of 0.0005, always < cap and representable in 6 digits.
  const auto steps = static_cast<std::uint64_t>(cap / 0.0005);
  if (steps == 0) return 0.0;
  return 0.0005 * static_cast<double>(rng.below(steps + 1));
}

mach::DeviceDescriptor make_host(Prng& rng) {
  mach::DeviceDescriptor d;
  d.name = "host";
  d.type = mach::DeviceType::kHost;
  d.memory = mach::MemorySpace::kShared;
  d.link = mach::kNoLink;
  d.peak_gflops = static_cast<double>(irange(rng, 40, 140));
  d.sustained_gflops = static_cast<double>(
      irange(rng, 20, static_cast<long long>(d.peak_gflops)));
  d.peak_membw_GBps = static_cast<double>(irange(rng, 30, 120));
  d.sustained_membw_GBps = static_cast<double>(
      irange(rng, 15, static_cast<long long>(d.peak_membw_GBps)));
  d.parallel_units = static_cast<int>(irange(rng, 1, 32));
  return d;
}

/// Accelerator classes the generator draws from. `kLittle` is the
/// big.LITTLE-style asymmetric profile: a shared-memory cluster of small
/// cores next to the (big) host cores, no interconnect link.
enum class DevClass { kBigGpu, kSmallGpu, kMic, kLittle };

mach::DeviceDescriptor make_accel(Prng& rng, DevClass cls, int index) {
  mach::DeviceDescriptor d;
  char name[32];
  switch (cls) {
    case DevClass::kBigGpu:
      std::snprintf(name, sizeof name, "biggpu-%d", index);
      d.type = mach::DeviceType::kNvGpu;
      d.peak_gflops = static_cast<double>(irange(rng, 600, 1600));
      d.peak_membw_GBps = static_cast<double>(irange(rng, 150, 300));
      d.launch_overhead_s = static_cast<double>(irange(rng, 5, 30)) * 1e-6;
      break;
    case DevClass::kSmallGpu:
      std::snprintf(name, sizeof name, "gpu-%d", index);
      d.type = mach::DeviceType::kNvGpu;
      d.peak_gflops = static_cast<double>(irange(rng, 150, 600));
      d.peak_membw_GBps = static_cast<double>(irange(rng, 60, 180));
      d.launch_overhead_s = static_cast<double>(irange(rng, 3, 20)) * 1e-6;
      break;
    case DevClass::kMic:
      std::snprintf(name, sizeof name, "mic-%d", index);
      d.type = mach::DeviceType::kMic;
      d.peak_gflops = static_cast<double>(irange(rng, 400, 1200));
      d.peak_membw_GBps = static_cast<double>(irange(rng, 100, 250));
      d.launch_overhead_s = static_cast<double>(irange(rng, 50, 200)) * 1e-6;
      break;
    case DevClass::kLittle:
      std::snprintf(name, sizeof name, "little-%d", index);
      d.type = mach::DeviceType::kMic;
      d.memory = mach::MemorySpace::kShared;
      d.link = mach::kNoLink;
      d.peak_gflops = static_cast<double>(irange(rng, 10, 60));
      d.peak_membw_GBps = static_cast<double>(irange(rng, 10, 40));
      d.launch_overhead_s = static_cast<double>(irange(rng, 1, 10)) * 1e-6;
      break;
  }
  d.name = name;
  // Sustained capability is a fraction of advertised — the model /
  // ground-truth divergence the paper's Table V rows hinge on.
  d.sustained_gflops = static_cast<double>(irange(
      rng, std::max<long long>(1, static_cast<long long>(d.peak_gflops) / 3),
      static_cast<long long>(d.peak_gflops)));
  d.sustained_membw_GBps = static_cast<double>(irange(
      rng, std::max<long long>(1, static_cast<long long>(d.peak_membw_GBps) / 3),
      static_cast<long long>(d.peak_membw_GBps)));
  d.alloc_overhead_s = static_cast<double>(irange(rng, 0, 20)) * 1e-6;
  d.noise = 0.001 * static_cast<double>(rng.below(31));  // [0, 0.030]
  d.parallel_units = static_cast<int>(irange(rng, 1, 64));
  return d;
}

/// Rate-based fault profile for one accelerator. Hang rates only when the
/// watchdog is armed (an unwatched hang stalls the offload forever — a
/// scenario bug, not a runtime bug); corruption rates only when integrity
/// verification is on (silent corruption is *supposed* to change results).
sim::FaultProfile make_fault_profile(Prng& rng, bool watchdog,
                                     bool integrity) {
  sim::FaultProfile f;
  f.transfer_fault_rate = rate(rng, 0.05);
  f.launch_fault_rate = rate(rng, 0.05);
  f.slowdown_rate = rate(rng, 0.10);
  f.slowdown_factor = 1.0 + 0.25 * static_cast<double>(irange(rng, 4, 20));
  f.degrade_rate = rate(rng, 0.02);
  f.degrade_factor = 1.0 + 0.25 * static_cast<double>(irange(rng, 4, 28));
  if (watchdog) f.hang_rate = rate(rng, 0.02);
  if (integrity) {
    f.corrupt_transfer_rate = rate(rng, 0.05);
    f.corrupt_compute_rate = rate(rng, 0.05);
  }
  return f;
}

const char* kKernelNames[6] = {"axpy",      "matvec", "matmul",
                               "stencil2d", "sum",    "bm2d"};

sim::FaultKind parse_fault_kind(const std::string& s, int line) {
  for (int k = 0; k < sim::kNumCountedKinds; ++k) {
    const auto kind = static_cast<sim::FaultKind>(k);
    if (iequals(s, sim::to_string(kind))) return kind;
  }
  throw ConfigError("scenario line " + std::to_string(line) +
                    ": unknown fault kind '" + s + "'");
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

long long ScenarioSpec::loop_iterations() const {
  // The unmaterialized case carries the loop shape without allocating.
  return kern::make_case(kernel, n, false)->kernel().iterations.size();
}

long long min_trip(const std::string& kernel) {
  if (kernel == "bm2d") return 32;
  if (kernel == "stencil2d") return 8;
  if (kernel == "matmul" || kernel == "matvec") return 4;
  return 8;  // axpy / sum
}

long long quantize_trip(const std::string& kernel, long long n) {
  const long long lo = min_trip(kernel);
  if (n < lo) n = lo;
  if (kernel == "bm2d") n -= n % 16;
  return n;
}

ScenarioSpec generate_scenario(std::uint64_t seed,
                               const GeneratorLimits& limits) {
  HOMP_REQUIRE(limits.max_devices >= 2,
               "fuzz generator needs room for the host plus one accelerator");
  // Decorrelate nearby seeds; the Prng constructor splitmixes again, so
  // seed 1 and seed 2 share nothing.
  Prng rng(mix64(seed ^ 0xf022ed5eedULL));

  ScenarioSpec s;
  s.seed = seed;

  // --- resilience toggles first: they gate what faults may exist ---
  s.watchdog = rng.below(5) != 0;    // off 20% of the time
  s.integrity = rng.below(5) != 0;   // off 20% of the time
  s.parallel_offload = rng.below(4) != 0;

  // --- machine topology ---
  const int n_accel =
      static_cast<int>(irange(rng, 1, limits.max_devices - 1));
  s.machine.name = "fuzz-" + std::to_string(seed);
  s.machine.devices.push_back(make_host(rng));
  int shared_link = -1;  // K80-style: consecutive dies share one slot
  for (int i = 0; i < n_accel; ++i) {
    const auto cls = static_cast<DevClass>(rng.below(4));
    auto d = make_accel(rng, cls, i);
    if (d.memory == mach::MemorySpace::kDiscrete) {
      if (shared_link >= 0 && rng.below(3) == 0) {
        d.link = shared_link;  // share the previous device's link
      } else {
        mach::LinkDescriptor l;
        l.name = "link-" + std::to_string(s.machine.links.size());
        l.latency_s = static_cast<double>(irange(rng, 1, 25)) * 1e-6;
        l.bandwidth_Bps = static_cast<double>(irange(rng, 2, 16)) * 1e9;
        s.machine.links.push_back(l);
        d.link = static_cast<int>(s.machine.links.size()) - 1;
        shared_link = d.link;
      }
    }
    s.machine.devices.push_back(std::move(d));
  }

  // --- kernel / problem size ---
  s.kernel = kKernelNames[rng.below(6)];
  long long cap = limits.max_trip;
  if (s.kernel == "matmul") cap = std::min<long long>(cap, 96);
  else if (s.kernel == "stencil2d") cap = std::min<long long>(cap, 96);
  else if (s.kernel == "bm2d") cap = std::min<long long>(cap, 128);
  else if (s.kernel == "matvec") cap = std::min<long long>(cap, 512);
  s.n = quantize_trip(s.kernel, irange(rng, min_trip(s.kernel), cap));

  // --- scheduler tuning shared by all algorithm families ---
  s.sched.dynamic_chunk_fraction = q3(rng, 0.01, 0.21);
  s.sched.guided_chunk_fraction = q3(rng, 0.05, 0.55);
  s.sched.sample_fraction = q3(rng, 0.05, 0.30);
  s.sched.cutoff_ratio = rng.below(3) == 0 ? q3(rng, 0.05, 0.30) : 0.0;
  s.sched.min_chunk = irange(rng, 1, 8);
  s.sched.cyclic_block_fraction = q3(rng, 0.01, 0.11);
  s.sched.steal_grain_fraction = q3(rng, 0.005, 0.055);

  // --- seeds ---
  s.noise_seed = mix64(seed * 3 + 1) | 1;
  s.fault_seed = mix64(seed * 5 + 2) | 1;

  // --- faults: device 0 (the host) is the fault-free anchor ---
  if (limits.allow_faults && rng.below(4) != 0) {
    for (int i = 1; i <= n_accel; ++i) {
      if (rng.below(2) == 0) continue;  // only a subset faults
      s.machine.devices[static_cast<std::size_t>(i)].fault =
          make_fault_profile(rng, s.watchdog, s.integrity);
    }
    const long long entries = irange(rng, 0, limits.max_script_entries);
    for (long long e = 0; e < entries; ++e) {
      sim::ScriptedFault f;
      f.device_id = static_cast<int>(irange(rng, 1, n_accel));
      // Draw a kind compatible with the toggles.
      for (int tries = 0; tries < 8; ++tries) {
        const auto k = static_cast<sim::FaultKind>(rng.below(8));
        if (k == sim::FaultKind::kHang && !s.watchdog) continue;
        if ((k == sim::FaultKind::kCorruptTransfer ||
             k == sim::FaultKind::kCorruptCompute) &&
            !s.integrity)
          continue;
        f.kind = k;
        break;
      }
      if (f.kind == sim::FaultKind::kDeviceLoss) {
        f.at_s = static_cast<double>(irange(rng, 0, 500)) * 1e-6;
      } else {
        f.op = irange(rng, 0, 5);
        if (f.kind == sim::FaultKind::kSlowdown ||
            f.kind == sim::FaultKind::kDegrade) {
          f.factor = 1.0 + 0.25 * static_cast<double>(irange(rng, 4, 20));
        }
      }
      s.faults.push_back(f);
    }
  }

  // Generous for any healthy run at these sizes; a livelocked scheduler
  // burns through it in well under a second of wall time.
  s.step_budget = 500000 + 200 * s.n;

  s.machine.validate();
  return s;
}

void plant_corrupt_commit(ScenarioSpec& s) {
  HOMP_REQUIRE(s.machine.devices.size() >= 2,
               "planting needs at least one accelerator");
  s.integrity = false;  // verification off: the corruption commits silently
  // Strip generated corruption faults — the planted one must be the only
  // result-changing fault, so the oracle's report is attributable.
  for (auto& d : s.machine.devices) {
    d.fault.corrupt_transfer_rate = 0.0;
    d.fault.corrupt_compute_rate = 0.0;
  }
  std::erase_if(s.faults, [](const sim::ScriptedFault& f) {
    return f.kind == sim::FaultKind::kCorruptTransfer ||
           f.kind == sim::FaultKind::kCorruptCompute;
  });
  sim::ScriptedFault f;
  f.device_id = 1;
  f.kind = sim::FaultKind::kCorruptCompute;
  f.op = 0;  // the accelerator's very first compute
  s.faults.push_back(f);
}

void plant_dsan_conflict(ScenarioSpec& s) {
  s.dsan = true;
  s.plant_dsan_conflict = true;
}

std::string to_toml(const ScenarioSpec& s, const std::string& machine_file,
                    const std::string& invariant,
                    const std::string& algorithm) {
  std::ostringstream os;
  os << "# homp-fuzz scenario (docs/FUZZING.md); replay with\n"
        "#   homp-fuzz --replay <this file>\n";
  os << "[scenario]\n";
  os << "seed = " << s.seed << "\n";
  os << "kernel = " << s.kernel << "\n";
  os << "n = " << s.n << "\n";
  if (!machine_file.empty()) os << "machine_file = " << machine_file << "\n";
  if (!invariant.empty()) os << "invariant = " << invariant << "\n";
  if (!algorithm.empty()) os << "algorithm = " << algorithm << "\n";

  os << "\n[sched]\n";
  os << "dynamic_chunk_fraction = " << fmt_double(s.sched.dynamic_chunk_fraction)
     << "\n";
  os << "guided_chunk_fraction = " << fmt_double(s.sched.guided_chunk_fraction)
     << "\n";
  os << "sample_fraction = " << fmt_double(s.sched.sample_fraction) << "\n";
  os << "cutoff_ratio = " << fmt_double(s.sched.cutoff_ratio) << "\n";
  os << "min_chunk = " << s.sched.min_chunk << "\n";
  os << "cyclic_block_fraction = "
     << fmt_double(s.sched.cyclic_block_fraction) << "\n";
  os << "cyclic_absolute_block = " << s.sched.cyclic_absolute_block << "\n";
  os << "steal_grain_fraction = " << fmt_double(s.sched.steal_grain_fraction)
     << "\n";

  os << "\n[options]\n";
  os << "noise_seed = " << s.noise_seed << "\n";
  os << "fault_seed = " << s.fault_seed << "\n";
  os << "integrity = " << (s.integrity ? "true" : "false") << "\n";
  os << "watchdog = " << (s.watchdog ? "true" : "false") << "\n";
  os << "parallel_offload = " << (s.parallel_offload ? "true" : "false")
     << "\n";
  os << "step_budget = " << s.step_budget << "\n";
  // dsan keys only when set: older repro files stay byte-identical.
  if (s.dsan) os << "dsan = true\n";
  if (s.plant_dsan_conflict) os << "plant_dsan_conflict = true\n";

  for (std::size_t i = 0; i < s.faults.size(); ++i) {
    const auto& f = s.faults[i];
    os << "\n[fault." << i << "]\n";
    os << "device = " << f.device_id << "\n";
    os << "kind = " << sim::to_string(f.kind) << "\n";
    os << "op = " << f.op << "\n";
    os << "at_s = " << fmt_double(f.at_s) << "\n";
    os << "factor = " << fmt_double(f.factor) << "\n";
  }
  return os.str();
}

ParsedScenario parse_scenario(const std::string& text) {
  ParsedScenario out;
  ScenarioSpec& s = out.scenario;
  s.kernel.clear();
  s.faults.clear();

  std::istringstream in(text);
  std::string line;
  std::string section;
  sim::ScriptedFault* fault = nullptr;
  int lineno = 0;
  auto bad = [&](const std::string& why) {
    throw ConfigError("scenario line " + std::to_string(lineno) + ": " + why);
  };

  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string t(trim(line));
    if (t.empty()) continue;
    if (t.front() == '[') {
      if (t.back() != ']') bad("unterminated section header");
      section = t.substr(1, t.size() - 2);
      if (starts_with(section, "fault.")) {
        s.faults.emplace_back();
        fault = &s.faults.back();
      } else if (section != "scenario" && section != "sched" &&
                 section != "options") {
        bad("unknown section [" + section + "]");
      }
      continue;
    }
    const auto eq = t.find('=');
    if (eq == std::string::npos) bad("expected key = value");
    const std::string key(trim(t.substr(0, eq)));
    const std::string val(trim(t.substr(eq + 1)));
    if (key.empty() || val.empty()) bad("empty key or value");

    auto as_ll = [&]() -> long long {
      try {
        return std::stoll(val);
      } catch (...) {
        bad("'" + key + "' needs an integer, got '" + val + "'");
      }
      return 0;
    };
    auto as_u64 = [&]() -> std::uint64_t {
      try {
        return std::stoull(val);
      } catch (...) {
        bad("'" + key + "' needs an unsigned integer, got '" + val + "'");
      }
      return 0;
    };
    auto as_double = [&]() -> double {
      try {
        return std::stod(val);
      } catch (...) {
        bad("'" + key + "' needs a number, got '" + val + "'");
      }
      return 0.0;
    };
    auto as_bool = [&]() -> bool {
      if (iequals(val, "true")) return true;
      if (iequals(val, "false")) return false;
      bad("'" + key + "' needs true/false, got '" + val + "'");
      return false;
    };

    if (section == "scenario") {
      if (key == "seed") s.seed = as_u64();
      else if (key == "kernel") s.kernel = val;
      else if (key == "n") s.n = as_ll();
      else if (key == "machine_file") out.machine_file = val;
      else if (key == "invariant") out.invariant = val;
      else if (key == "algorithm") out.algorithm = val;
      else bad("unknown [scenario] key '" + key + "'");
    } else if (section == "sched") {
      if (key == "dynamic_chunk_fraction")
        s.sched.dynamic_chunk_fraction = as_double();
      else if (key == "guided_chunk_fraction")
        s.sched.guided_chunk_fraction = as_double();
      else if (key == "sample_fraction") s.sched.sample_fraction = as_double();
      else if (key == "cutoff_ratio") s.sched.cutoff_ratio = as_double();
      else if (key == "min_chunk") s.sched.min_chunk = as_ll();
      else if (key == "cyclic_block_fraction")
        s.sched.cyclic_block_fraction = as_double();
      else if (key == "cyclic_absolute_block")
        s.sched.cyclic_absolute_block = as_ll();
      else if (key == "steal_grain_fraction")
        s.sched.steal_grain_fraction = as_double();
      else bad("unknown [sched] key '" + key + "'");
    } else if (section == "options") {
      if (key == "noise_seed") s.noise_seed = as_u64();
      else if (key == "fault_seed") s.fault_seed = as_u64();
      else if (key == "integrity") s.integrity = as_bool();
      else if (key == "watchdog") s.watchdog = as_bool();
      else if (key == "parallel_offload") s.parallel_offload = as_bool();
      else if (key == "step_budget") s.step_budget = as_ll();
      else if (key == "dsan") s.dsan = as_bool();
      else if (key == "plant_dsan_conflict") s.plant_dsan_conflict = as_bool();
      else bad("unknown [options] key '" + key + "'");
    } else if (fault != nullptr && starts_with(section, "fault.")) {
      if (key == "device") fault->device_id = static_cast<int>(as_ll());
      else if (key == "kind") fault->kind = parse_fault_kind(val, lineno);
      else if (key == "op") fault->op = as_ll();
      else if (key == "at_s") fault->at_s = as_double();
      else if (key == "factor") fault->factor = as_double();
      else bad("unknown [fault] key '" + key + "'");
    } else {
      bad("key '" + key + "' outside any section");
    }
  }
  if (s.kernel.empty()) {
    throw ConfigError("scenario file has no [scenario] kernel entry");
  }
  return out;
}

}  // namespace homp::fuzz
