#include "fuzz/serve_driver.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "fuzz/scenario.h"
#include "machine/parser.h"

namespace homp::fuzz {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  HOMP_REQUIRE(out.good(), "cannot write repro file: " + path);
  out << content;
  HOMP_REQUIRE(out.good(), "short write to repro file: " + path);
}

bool still_fails(const ServeScenarioSpec& s, const std::string& invariant,
                 int& runs_left) {
  if (runs_left <= 0) return false;
  --runs_left;
  const ServeOracleReport r = run_serve_oracle(s);
  for (const auto& v : r.violations) {
    if (v.invariant == invariant) return true;
  }
  return false;
}

int faulty_tenants(const ServeScenarioSpec& s) {
  int n = 0;
  for (const auto& t : s.tenants) {
    if (t.fault.any()) ++n;
  }
  return n;
}

/// Greedy serve-scenario minimizer: drop jobs, drop whole tenants (with
/// their jobs), halve problem sizes, clear fault scripts — accepting any
/// edit after which `invariant` still fails, until a full sweep makes no
/// progress or the oracle budget runs out. The result is still a valid
/// scenario: jobs always reference live tenants and sizes stay
/// kernel-quantized.
ServeScenarioSpec shrink_serve(const ServeScenarioSpec& start,
                               const std::string& invariant, int budget) {
  ServeScenarioSpec cur = start;
  int runs_left = budget;
  bool progressed = true;
  while (progressed && runs_left > 0) {
    progressed = false;

    // 1. drop individual jobs
    for (std::size_t i = 0; i < cur.jobs.size() && runs_left > 0;) {
      if (cur.jobs.size() == 1) break;  // an empty run exercises nothing
      ServeScenarioSpec cand = cur;
      cand.jobs.erase(cand.jobs.begin() + static_cast<std::ptrdiff_t>(i));
      if (still_fails(cand, invariant, runs_left)) {
        cur = std::move(cand);
        progressed = true;
      } else {
        ++i;
      }
    }

    // 2. drop whole tenants (and their jobs; remap the survivors)
    for (std::size_t t = 0; t < cur.tenants.size() && runs_left > 0;) {
      if (cur.tenants.size() == 1) break;
      ServeScenarioSpec cand = cur;
      cand.tenants.erase(cand.tenants.begin() +
                         static_cast<std::ptrdiff_t>(t));
      for (std::size_t j = 0; j < cand.jobs.size();) {
        if (cand.jobs[j].tenant == static_cast<int>(t)) {
          cand.jobs.erase(cand.jobs.begin() + static_cast<std::ptrdiff_t>(j));
        } else {
          if (cand.jobs[j].tenant > static_cast<int>(t)) {
            --cand.jobs[j].tenant;
          }
          ++j;
        }
      }
      if (!cand.jobs.empty() && still_fails(cand, invariant, runs_left)) {
        cur = std::move(cand);
        progressed = true;
      } else {
        ++t;
      }
    }

    // 3. halve job sizes (kernel-quantized, floored at min_trip)
    for (std::size_t i = 0; i < cur.jobs.size() && runs_left > 0; ++i) {
      while (cur.jobs[i].job.n > min_trip(cur.jobs[i].job.kernel) &&
             runs_left > 0) {
        ServeScenarioSpec cand = cur;
        cand.jobs[i].job.n =
            quantize_trip(cand.jobs[i].job.kernel, cand.jobs[i].job.n / 2);
        if (cand.jobs[i].job.n == cur.jobs[i].job.n) break;
        if (!still_fails(cand, invariant, runs_left)) break;
        cur = std::move(cand);
        progressed = true;
      }
    }

    // 4. clear per-tenant fault scripts
    for (std::size_t t = 0; t < cur.tenants.size() && runs_left > 0; ++t) {
      if (!cur.tenants[t].fault.any()) continue;
      ServeScenarioSpec cand = cur;
      cand.tenants[t].fault = sim::FaultProfile{};
      if (still_fails(cand, invariant, runs_left)) {
        cur = std::move(cand);
        progressed = true;
      }
    }
  }
  return cur;
}

}  // namespace

ServeFuzzSummary run_serve_fuzz(const ServeFuzzConfig& cfg) {
  HOMP_REQUIRE(cfg.count >= 1, "serve fuzz corpus needs count >= 1");
  ServeFuzzSummary summary;
  std::ostringstream scenarios_json;

  for (int i = 0; i < cfg.count; ++i) {
    const std::uint64_t seed = cfg.seed + static_cast<std::uint64_t>(i);
    ServeScenarioSpec s = generate_serve_scenario(seed, cfg.limits);
    if (cfg.dsan) s.dsan = true;

    const ServeOracleReport report = run_serve_oracle(s);
    ++summary.scenarios;
    summary.jobs += static_cast<int>(s.jobs.size());
    summary.completed += report.completed;
    summary.failed += report.failed;
    summary.cancelled += report.cancelled;
    summary.rejected += report.rejected;
    summary.breaker_trips += report.breaker_trips;
    summary.violations += static_cast<int>(report.violations.size());

    if (summary.scenarios > 1) scenarios_json << ",\n";
    scenarios_json << "    {\"seed\": " << seed
                   << ", \"tenants\": " << s.tenants.size()
                   << ", \"jobs\": " << s.jobs.size()
                   << ", \"completed\": " << report.completed
                   << ", \"failed\": " << report.failed
                   << ", \"cancelled\": " << report.cancelled
                   << ", \"rejected\": " << report.rejected
                   << ", \"breaker_trips\": " << report.breaker_trips
                   << ", \"violations\": " << report.violations.size()
                   << ", \"digest\": " << jstr(hex64(report.digest())) << "}";

    if (report.violations.empty()) continue;

    // --- failing scenario: shrink, then emit a self-contained repro ---
    const Violation& primary = report.violations.front();
    ServeScenarioSpec minimal = s;
    if (cfg.shrink_failures) {
      minimal = shrink_serve(s, primary.invariant, cfg.shrink_budget);
    }
    const ServeOracleReport min_report = run_serve_oracle(minimal);
    const Violation* rec = &primary;
    for (const auto& v : min_report.violations) {
      if (v.invariant == primary.invariant) {
        rec = &v;
        break;
      }
    }

    ServeFailureRecord fr;
    fr.seed = seed;
    fr.invariant = primary.invariant;
    fr.detail = rec->detail;
    fr.shrunk_tenants = static_cast<int>(minimal.tenants.size());
    fr.shrunk_jobs = static_cast<int>(minimal.jobs.size());
    fr.shrunk_faulty_tenants = faulty_tenants(minimal);

    if (static_cast<int>(summary.failures.size()) < cfg.max_repros) {
      std::error_code ec;
      std::filesystem::create_directories(cfg.repro_dir, ec);
      HOMP_REQUIRE(!ec, "cannot create repro directory: " + cfg.repro_dir);
      const std::string stem =
          (primary.invariant == "dsan-determinism" ? "dsan-repro-"
                                                   : "serve-repro-") +
          std::to_string(seed);
      const std::string ini_name = stem + ".ini";
      const std::string toml_path = cfg.repro_dir + "/" + stem + ".toml";
      write_file(cfg.repro_dir + "/" + ini_name,
                 mach::to_text(minimal.machine));
      write_file(toml_path,
                 serve_to_toml(minimal, ini_name, primary.invariant));
      fr.repro_toml = toml_path;
    }
    summary.failures.push_back(std::move(fr));
  }

  // --- deterministic summary document ---
  std::ostringstream os;
  os << "{\n";
  os << "  \"config\": {\"mode\": \"serve\", \"seed\": " << cfg.seed
     << ", \"count\": " << cfg.count
     << ", \"max_devices\": " << cfg.limits.max_devices
     << ", \"max_tenants\": " << cfg.limits.max_tenants
     << ", \"max_jobs\": " << cfg.limits.max_jobs
     << ", \"dsan\": " << (cfg.dsan ? "true" : "false") << "},\n";
  os << "  \"invariants\": [";
  const auto& names = serve_invariant_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) os << ", ";
    os << jstr(names[i]);
  }
  os << "],\n";
  os << "  \"scenarios\": " << summary.scenarios << ",\n";
  os << "  \"jobs\": " << summary.jobs << ",\n";
  os << "  \"completed\": " << summary.completed << ",\n";
  os << "  \"failed\": " << summary.failed << ",\n";
  os << "  \"cancelled\": " << summary.cancelled << ",\n";
  os << "  \"rejected\": " << summary.rejected << ",\n";
  os << "  \"breaker_trips\": " << summary.breaker_trips << ",\n";
  os << "  \"violations\": " << summary.violations << ",\n";
  os << "  \"runs\": [\n" << scenarios_json.str() << "\n  ],\n";
  os << "  \"failures\": [";
  for (std::size_t i = 0; i < summary.failures.size(); ++i) {
    const auto& f = summary.failures[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"seed\": " << f.seed << ", \"invariant\": " << jstr(f.invariant)
       << ", \"detail\": " << jstr(f.detail)
       << ", \"repro\": " << jstr(f.repro_toml)
       << ", \"shrunk_tenants\": " << f.shrunk_tenants
       << ", \"shrunk_jobs\": " << f.shrunk_jobs
       << ", \"shrunk_faulty_tenants\": " << f.shrunk_faulty_tenants << "}";
  }
  os << (summary.failures.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  summary.json = os.str();
  return summary;
}

ServeReplayOutcome serve_replay(const std::string& toml_path) {
  std::ifstream in(toml_path);
  HOMP_REQUIRE(in.good(), "cannot open repro file: " + toml_path);
  std::ostringstream buf;
  buf << in.rdbuf();

  ParsedServeScenario parsed = parse_serve_scenario(buf.str());
  HOMP_REQUIRE(!parsed.machine_file.empty(),
               "repro file records no machine_file: " + toml_path);
  HOMP_REQUIRE(!parsed.invariant.empty(),
               "repro file records no failing invariant: " + toml_path);

  std::filesystem::path machine_path(parsed.machine_file);
  if (machine_path.is_relative()) {
    machine_path =
        std::filesystem::path(toml_path).parent_path() / machine_path;
  }
  parsed.scenario.machine = mach::load_machine_file(machine_path.string());
  parsed.scenario.replay = true;

  ServeReplayOutcome out;
  out.recorded_invariant = parsed.invariant;
  ServeOracleReport report = run_serve_oracle(parsed.scenario);
  out.violations = std::move(report.violations);
  for (const auto& v : out.violations) {
    if (v.invariant == out.recorded_invariant) {
      out.reproduced = true;
      break;
    }
  }
  return out;
}

}  // namespace homp::fuzz
