#ifndef HOMP_FUZZ_SERVE_ORACLE_H
#define HOMP_FUZZ_SERVE_ORACLE_H

/// \file serve_oracle.h
/// Serve-mode invariant oracle of the homp-fuzz harness
/// (docs/FUZZING.md "--serve").
///
/// One oracle run executes one serve scenario twice on fresh servers and
/// checks the serve-invariant catalog (names appear in reports, repro
/// files and docs/FUZZING.md):
///   serve-progress      the run drains without an exception or abort —
///                       every contained failure is a record, never a
///                       crash, and no job stalls the drain
///   serve-conservation  completed jobs committed exactly their trip
///                       count; terminal kFail/kCancelled records carry
///                       an error class and agree with their ok flag
///   serve-fifo          per-tenant dispatch order respects admit order
///   serve-audit         the decision audit is time-monotone and every
///                       terminal record has a matching terminal event
///   serve-accounting    admitted == completed + failed + cancelled per
///                       tenant, and the record list agrees with the
///                       per-tenant counters
///   serve-shed-legality shed-ladder transitions are contiguous and stay
///                       within [L0, L3]
///   serve-metrics       the exported metrics registry agrees with the
///                       report it was built from
///   serve-memory-flat   a drained server retains zero job objects and
///                       the engine holds zero pending events and zero
///                       live generations (no graveyard, no orphaned
///                       timers)
///   serve-determinism   both runs produce byte-identical summary JSON

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/oracle.h"
#include "fuzz/serve_scenario.h"

namespace homp::fuzz {

struct ServeOracleReport {
  std::vector<Violation> violations;  ///< algorithm field carries "serve"

  std::size_t completed = 0;
  std::size_t failed = 0;     ///< terminal kFail records
  std::size_t cancelled = 0;  ///< terminal kCancelled records
  std::size_t rejected = 0;
  std::size_t breaker_trips = 0;

  /// First run's deterministic summary JSON.
  std::string summary_json;

  bool ok() const noexcept { return violations.empty(); }

  /// 64-bit digest of the summary JSON — two byte-identical harness
  /// executions must agree here.
  std::uint64_t digest() const noexcept;
};

/// The serve invariant names in report order.
const std::vector<std::string>& serve_invariant_names();

/// Run `s` twice and check every serve invariant. Never throws for
/// scenario-induced failures — those become violations; only genuine
/// misuse (unknown kernel name etc. during generation) propagates.
ServeOracleReport run_serve_oracle(const ServeScenarioSpec& s);

}  // namespace homp::fuzz

#endif  // HOMP_FUZZ_SERVE_ORACLE_H
