#include "fuzz/serve_scenario.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/checksum.h"
#include "common/error.h"
#include "common/prng.h"
#include "common/strings.h"
#include "fuzz/scenario.h"
#include "sched/algorithm.h"

namespace homp::fuzz {

namespace {

long long irange(Prng& rng, long long lo, long long hi) {
  return lo + static_cast<long long>(
                  rng.below(static_cast<std::uint64_t>(hi - lo + 1)));
}

/// Rates as multiples of 0.0005 — small enough to stay transient-heavy,
/// exactly representable, never >= 1.
double rate(Prng& rng, double cap) {
  const auto steps = static_cast<std::uint64_t>(cap / 0.0005);
  if (steps == 0) return 0.0;
  return 0.0005 * static_cast<double>(rng.below(steps + 1));
}

/// The algorithm families serve scenarios draw from. kHistoryAuto is
/// excluded: it needs a primed ThroughputHistory the server does not
/// carry.
const sched::AlgorithmKind kServeAlgorithms[] = {
    sched::AlgorithmKind::kBlock,
    sched::AlgorithmKind::kDynamic,
    sched::AlgorithmKind::kGuided,
    sched::AlgorithmKind::kModel1Auto,
    sched::AlgorithmKind::kModel2Auto,
    sched::AlgorithmKind::kSchedProfileAuto,
    sched::AlgorithmKind::kModelProfileAuto,
    sched::AlgorithmKind::kCyclic,
    sched::AlgorithmKind::kWorkStealing,
};
constexpr int kNumServeAlgorithms = 9;

const char* kServeKernels[6] = {"axpy",      "matvec", "matmul",
                                "stencil2d", "sum",    "bm2d"};

/// Per-tenant fault shape: most tenants are clean; a band is flaky
/// (transient rates the retry/quarantine machinery absorbs); one band is
/// "molasses" — a near-certain heavy slowdown the admission predictor
/// cannot see, so admitted deadlines get missed mid-run and the server
/// must cancel (the kCancelled driver); one band is toxic enough to
/// force terminal kFail records (the containment and breaker driver);
/// one is "poison" — every job deterministically loses all granted
/// devices shortly after dispatch.
sim::FaultProfile draw_tenant_fault(Prng& rng) {
  sim::FaultProfile f;
  const auto band = rng.below(10);
  if (band < 4) return f;  // clean
  if (band < 7) {          // flaky but recoverable
    f.transfer_fault_rate = rate(rng, 0.04);
    f.launch_fault_rate = rate(rng, 0.04);
    f.slowdown_rate = rate(rng, 0.08);
    f.slowdown_factor = 1.0 + 0.25 * static_cast<double>(irange(rng, 4, 16));
    f.hang_rate = rate(rng, 0.01);  // the base options always arm the watchdog
    return f;
  }
  if (band == 7) {  // molasses: admission-invisible 16-64x chunk slowdown
    f.slowdown_rate = 0.9 + 0.001 * static_cast<double>(rng.below(101));
    f.slowdown_factor = static_cast<double>(1LL << irange(rng, 4, 6));
    return f;
  }
  if (band == 8) {  // corruption-heavy: integrity voting exhausts attempts
    f.corrupt_compute_rate =
        0.25 + 0.0005 * static_cast<double>(rng.below(501));
    return f;
  }
  // poison: all granted devices die this long after the job starts
  f.fail_at_s = 1e-4 * static_cast<double>(irange(rng, 1, 40));
  return f;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

serve::PriorityClass parse_priority(const std::string& s, int line) {
  if (iequals(s, "gold")) return serve::PriorityClass::kGold;
  if (iequals(s, "silver")) return serve::PriorityClass::kSilver;
  if (iequals(s, "bronze")) return serve::PriorityClass::kBronze;
  throw ConfigError("serve scenario line " + std::to_string(line) +
                    ": unknown priority '" + s + "'");
}

serve::BackpressureMode parse_backpressure(const std::string& s, int line) {
  if (iequals(s, "reject")) return serve::BackpressureMode::kReject;
  if (iequals(s, "block")) return serve::BackpressureMode::kBlock;
  throw ConfigError("serve scenario line " + std::to_string(line) +
                    ": unknown backpressure '" + s + "'");
}

}  // namespace

ServeScenarioSpec generate_serve_scenario(std::uint64_t seed,
                                          const ServeGeneratorLimits& limits) {
  HOMP_REQUIRE(limits.max_devices >= 2 && limits.max_tenants >= 1 &&
                   limits.max_jobs >= 1,
               "serve fuzz generator needs a host+accelerator machine, one "
               "tenant and one job");

  // The single-offload generator already synthesizes valid, text-exact
  // machines; borrow its topology (device fault rates included — the
  // serve base options always arm watchdog + integrity, so every rate
  // kind is containable).
  GeneratorLimits mach_limits;
  mach_limits.max_devices = limits.max_devices;
  mach_limits.allow_faults = limits.allow_faults;
  ServeScenarioSpec s;
  s.seed = seed;
  s.machine = generate_scenario(seed, mach_limits).machine;
  s.machine.name = "serve-fuzz-" + std::to_string(seed);
  const int n_accel = static_cast<int>(s.machine.devices.size()) - 1;

  Prng rng(mix64(seed ^ 0x5e12ef0cc5ULL));

  // --- server knobs ---
  serve::ServeOptions& o = s.options;
  o.seed = mix64(seed * 9 + 5) | 1;
  const double mem_choices[4] = {8e9, 1e6, 1e5, 2e4};
  o.device_mem_bytes = mem_choices[rng.below(4)];
  o.max_devices_per_job =
      rng.below(4) == 0 ? static_cast<int>(irange(rng, 1, n_accel)) : 0;
  o.shed_l1_depth = static_cast<std::size_t>(irange(rng, 2, 8));
  o.shed_l2_depth = o.shed_l1_depth + static_cast<std::size_t>(irange(rng, 0, 6));
  o.shed_l3_depth = o.shed_l2_depth + static_cast<std::size_t>(irange(rng, 0, 6));
  o.breaker_threshold = static_cast<int>(rng.below(4));  // 0 = disabled
  o.breaker_cooldown_base_s = 5e-4 * static_cast<double>(irange(rng, 1, 100));
  o.breaker_cooldown_growth = 2.0;
  o.breaker_cooldown_cap_s =
      o.breaker_cooldown_base_s * static_cast<double>(1LL << irange(rng, 2, 6));
  o.materialize = rng.below(2) == 0;
  // Watchdog + integrity stay armed (base defaults) so hangs and
  // corruption are always containable; the per-job step budget converts
  // any livelock into a terminal kStepBudget record instead of a stuck
  // drain.
  o.base.harness.step_budget = 300000;

  // --- tenant roster ---
  const int n_tenants = static_cast<int>(irange(rng, 1, limits.max_tenants));
  for (int t = 0; t < n_tenants; ++t) {
    serve::TenantSpec ts;
    ts.name = "t" + std::to_string(t);
    ts.priority = static_cast<serve::PriorityClass>(rng.below(3));
    ts.weight = 0.5 * static_cast<double>(irange(rng, 1, 6));
    ts.backpressure = rng.below(2) == 0 ? serve::BackpressureMode::kReject
                                        : serve::BackpressureMode::kBlock;
    ts.max_queue_depth = static_cast<std::size_t>(irange(rng, 1, 6));
    if (limits.allow_faults) ts.fault = draw_tenant_fault(rng);
    s.tenants.push_back(std::move(ts));
  }

  // --- timed job list ---
  // Deadlines are drawn as multiples of the server's own MODEL_2
  // prediction (a throwaway server provides it): tight multiples get
  // rejected at admission, middling ones are admitted and then missed
  // whenever tenant faults inflate the actual runtime — the kCancelled
  // driver — and generous ones are met.
  serve::OffloadServer predictor(s.machine, s.tenants, s.options);
  const int n_jobs = static_cast<int>(
      irange(rng, std::min<long long>(3, limits.max_jobs), limits.max_jobs));
  for (int j = 0; j < n_jobs; ++j) {
    ServeJobEntry e;
    e.tenant = static_cast<int>(rng.below(static_cast<std::uint64_t>(n_tenants)));
    e.at_s = 1e-3 * static_cast<double>(irange(rng, 0, 400));
    e.job.kernel = kServeKernels[rng.below(6)];
    long long cap = limits.max_trip;
    if (e.job.kernel == "matmul" || e.job.kernel == "stencil2d") {
      cap = std::min<long long>(cap, 64);
    } else if (e.job.kernel == "bm2d") {
      cap = std::min<long long>(cap, 96);
    } else if (e.job.kernel == "matvec") {
      cap = std::min<long long>(cap, 256);
    }
    e.job.n = quantize_trip(e.job.kernel,
                            irange(rng, min_trip(e.job.kernel), cap));
    e.job.devices = static_cast<int>(irange(rng, 1, n_accel));
    if (rng.below(3) == 0) {
      const double predicted = predictor.predicted_job_seconds(
          e.job.kernel, e.job.n, e.job.devices);
      const double mult = 1.2 * static_cast<double>(1LL << rng.below(6)) *
                          (1.0 + 0.1 * static_cast<double>(rng.below(10)));
      e.job.deadline_s = std::max(1e-9, mult * predicted);
    }
    e.job.algorithm = kServeAlgorithms[rng.below(kNumServeAlgorithms)];
    s.jobs.push_back(e);
  }

  s.machine.validate();
  return s;
}

std::string serve_to_toml(const ServeScenarioSpec& s,
                          const std::string& machine_file,
                          const std::string& invariant) {
  std::ostringstream os;
  os << "# homp-fuzz serve scenario (docs/FUZZING.md); replay with\n"
        "#   homp-fuzz --replay <this file>\n";
  os << "[serve]\n";
  os << "seed = " << s.seed << "\n";
  if (!machine_file.empty()) os << "machine_file = " << machine_file << "\n";
  if (!invariant.empty()) os << "invariant = " << invariant << "\n";
  os << "serve_seed = " << s.options.seed << "\n";
  os << "device_mem_bytes = " << fmt_double(s.options.device_mem_bytes) << "\n";
  os << "max_devices_per_job = " << s.options.max_devices_per_job << "\n";
  os << "shed_l1_depth = " << s.options.shed_l1_depth << "\n";
  os << "shed_l2_depth = " << s.options.shed_l2_depth << "\n";
  os << "shed_l3_depth = " << s.options.shed_l3_depth << "\n";
  os << "shed_hysteresis = " << fmt_double(s.options.shed_hysteresis) << "\n";
  os << "shed_l2_device_cap = " << s.options.shed_l2_device_cap << "\n";
  os << "floor_fraction = " << fmt_double(s.options.floor_fraction) << "\n";
  os << "breaker_threshold = " << s.options.breaker_threshold << "\n";
  os << "breaker_cooldown_base_s = "
     << fmt_double(s.options.breaker_cooldown_base_s) << "\n";
  os << "breaker_cooldown_growth = "
     << fmt_double(s.options.breaker_cooldown_growth) << "\n";
  os << "breaker_cooldown_cap_s = "
     << fmt_double(s.options.breaker_cooldown_cap_s) << "\n";
  os << "materialize = " << (s.options.materialize ? "true" : "false") << "\n";
  os << "step_budget = " << s.options.base.harness.step_budget << "\n";
  // dsan key only when set: older repro files stay byte-identical.
  if (s.dsan) os << "dsan = true\n";

  for (std::size_t t = 0; t < s.tenants.size(); ++t) {
    const auto& ts = s.tenants[t];
    os << "\n[tenant." << t << "]\n";
    os << "name = " << ts.name << "\n";
    os << "priority = " << serve::to_string(ts.priority) << "\n";
    os << "weight = " << fmt_double(ts.weight) << "\n";
    os << "backpressure = " << serve::to_string(ts.backpressure) << "\n";
    os << "max_queue_depth = " << ts.max_queue_depth << "\n";
    const auto& f = ts.fault;
    os << "transfer_fault_rate = " << fmt_double(f.transfer_fault_rate) << "\n";
    os << "launch_fault_rate = " << fmt_double(f.launch_fault_rate) << "\n";
    os << "slowdown_rate = " << fmt_double(f.slowdown_rate) << "\n";
    os << "slowdown_factor = " << fmt_double(f.slowdown_factor) << "\n";
    os << "hang_rate = " << fmt_double(f.hang_rate) << "\n";
    os << "degrade_rate = " << fmt_double(f.degrade_rate) << "\n";
    os << "degrade_factor = " << fmt_double(f.degrade_factor) << "\n";
    os << "corrupt_transfer_rate = " << fmt_double(f.corrupt_transfer_rate)
       << "\n";
    os << "corrupt_compute_rate = " << fmt_double(f.corrupt_compute_rate)
       << "\n";
    os << "fail_at_s = " << fmt_double(f.fail_at_s) << "\n";
  }

  for (std::size_t j = 0; j < s.jobs.size(); ++j) {
    const auto& e = s.jobs[j];
    os << "\n[job." << j << "]\n";
    os << "tenant = " << e.tenant << "\n";
    os << "at_s = " << fmt_double(e.at_s) << "\n";
    os << "kernel = " << e.job.kernel << "\n";
    os << "n = " << e.job.n << "\n";
    os << "devices = " << e.job.devices << "\n";
    os << "deadline_s = " << fmt_double(e.job.deadline_s) << "\n";
    os << "algorithm = " << sched::to_string(e.job.algorithm) << "\n";
  }
  return os.str();
}

bool is_serve_scenario(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::string t(trim(line));
    if (t == "[serve]") return true;
    if (!t.empty() && t.front() == '[') return false;  // first section wins
  }
  return false;
}

ParsedServeScenario parse_serve_scenario(const std::string& text) {
  ParsedServeScenario out;
  ServeScenarioSpec& s = out.scenario;

  std::istringstream in(text);
  std::string line;
  std::string section;
  serve::TenantSpec* tenant = nullptr;
  ServeJobEntry* job = nullptr;
  int lineno = 0;
  bool saw_serve = false;
  auto bad = [&](const std::string& why) {
    throw ConfigError("serve scenario line " + std::to_string(lineno) + ": " +
                      why);
  };

  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string t(trim(line));
    if (t.empty()) continue;
    if (t.front() == '[') {
      if (t.back() != ']') bad("unterminated section header");
      section = t.substr(1, t.size() - 2);
      tenant = nullptr;
      job = nullptr;
      if (section == "serve") {
        saw_serve = true;
      } else if (starts_with(section, "tenant.")) {
        s.tenants.emplace_back();
        tenant = &s.tenants.back();
      } else if (starts_with(section, "job.")) {
        s.jobs.emplace_back();
        job = &s.jobs.back();
      } else {
        bad("unknown section [" + section + "]");
      }
      continue;
    }
    const auto eq = t.find('=');
    if (eq == std::string::npos) bad("expected key = value");
    const std::string key(trim(t.substr(0, eq)));
    const std::string val(trim(t.substr(eq + 1)));
    if (key.empty() || val.empty()) bad("empty key or value");

    auto as_ll = [&]() -> long long {
      try {
        return std::stoll(val);
      } catch (...) {
        bad("'" + key + "' needs an integer, got '" + val + "'");
      }
      return 0;
    };
    auto as_u64 = [&]() -> std::uint64_t {
      try {
        return std::stoull(val);
      } catch (...) {
        bad("'" + key + "' needs an unsigned integer, got '" + val + "'");
      }
      return 0;
    };
    auto as_double = [&]() -> double {
      try {
        return std::stod(val);
      } catch (...) {
        bad("'" + key + "' needs a number, got '" + val + "'");
      }
      return 0.0;
    };
    auto as_bool = [&]() -> bool {
      if (iequals(val, "true")) return true;
      if (iequals(val, "false")) return false;
      bad("'" + key + "' needs true/false, got '" + val + "'");
      return false;
    };

    if (section == "serve") {
      auto& o = s.options;
      if (key == "seed") s.seed = as_u64();
      else if (key == "machine_file") out.machine_file = val;
      else if (key == "invariant") out.invariant = val;
      else if (key == "serve_seed") o.seed = as_u64();
      else if (key == "device_mem_bytes") o.device_mem_bytes = as_double();
      else if (key == "max_devices_per_job")
        o.max_devices_per_job = static_cast<int>(as_ll());
      else if (key == "shed_l1_depth")
        o.shed_l1_depth = static_cast<std::size_t>(as_ll());
      else if (key == "shed_l2_depth")
        o.shed_l2_depth = static_cast<std::size_t>(as_ll());
      else if (key == "shed_l3_depth")
        o.shed_l3_depth = static_cast<std::size_t>(as_ll());
      else if (key == "shed_hysteresis") o.shed_hysteresis = as_double();
      else if (key == "shed_l2_device_cap")
        o.shed_l2_device_cap = static_cast<int>(as_ll());
      else if (key == "floor_fraction") o.floor_fraction = as_double();
      else if (key == "breaker_threshold")
        o.breaker_threshold = static_cast<int>(as_ll());
      else if (key == "breaker_cooldown_base_s")
        o.breaker_cooldown_base_s = as_double();
      else if (key == "breaker_cooldown_growth")
        o.breaker_cooldown_growth = as_double();
      else if (key == "breaker_cooldown_cap_s")
        o.breaker_cooldown_cap_s = as_double();
      else if (key == "materialize") o.materialize = as_bool();
      else if (key == "step_budget") o.base.harness.step_budget = as_ll();
      else if (key == "dsan") s.dsan = as_bool();
      else bad("unknown [serve] key '" + key + "'");
    } else if (tenant != nullptr) {
      auto& f = tenant->fault;
      if (key == "name") tenant->name = val;
      else if (key == "priority") tenant->priority = parse_priority(val, lineno);
      else if (key == "weight") tenant->weight = as_double();
      else if (key == "backpressure")
        tenant->backpressure = parse_backpressure(val, lineno);
      else if (key == "max_queue_depth")
        tenant->max_queue_depth = static_cast<std::size_t>(as_ll());
      else if (key == "transfer_fault_rate") f.transfer_fault_rate = as_double();
      else if (key == "launch_fault_rate") f.launch_fault_rate = as_double();
      else if (key == "slowdown_rate") f.slowdown_rate = as_double();
      else if (key == "slowdown_factor") f.slowdown_factor = as_double();
      else if (key == "hang_rate") f.hang_rate = as_double();
      else if (key == "degrade_rate") f.degrade_rate = as_double();
      else if (key == "degrade_factor") f.degrade_factor = as_double();
      else if (key == "corrupt_transfer_rate")
        f.corrupt_transfer_rate = as_double();
      else if (key == "corrupt_compute_rate")
        f.corrupt_compute_rate = as_double();
      else if (key == "fail_at_s") f.fail_at_s = as_double();
      else bad("unknown [tenant] key '" + key + "'");
    } else if (job != nullptr) {
      if (key == "tenant") job->tenant = static_cast<int>(as_ll());
      else if (key == "at_s") job->at_s = as_double();
      else if (key == "kernel") job->job.kernel = val;
      else if (key == "n") job->job.n = as_ll();
      else if (key == "devices") job->job.devices = static_cast<int>(as_ll());
      else if (key == "deadline_s") job->job.deadline_s = as_double();
      else if (key == "algorithm")
        job->job.algorithm = sched::algorithm_from_string(val);
      else bad("unknown [job] key '" + key + "'");
    } else {
      bad("key '" + key + "' outside any section");
    }
  }
  if (!saw_serve) {
    throw ConfigError("serve scenario file has no [serve] section");
  }
  if (s.tenants.empty() || s.jobs.empty()) {
    throw ConfigError("serve scenario needs at least one tenant and one job");
  }
  for (const auto& e : s.jobs) {
    if (e.tenant < 0 || e.tenant >= static_cast<int>(s.tenants.size())) {
      throw ConfigError("serve scenario job references tenant " +
                        std::to_string(e.tenant) + " of " +
                        std::to_string(s.tenants.size()));
    }
  }
  return out;
}

}  // namespace homp::fuzz
