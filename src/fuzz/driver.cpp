#include "fuzz/driver.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "fuzz/shrink.h"
#include "machine/parser.h"

namespace homp::fuzz {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// violation details may quote file paths or carry newlines.
std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  HOMP_REQUIRE(out.good(), "cannot write repro file: " + path);
  out << content;
  HOMP_REQUIRE(out.good(), "short write to repro file: " + path);
}

}  // namespace

FuzzSummary run_fuzz(const FuzzConfig& cfg) {
  HOMP_REQUIRE(cfg.count >= 1, "fuzz corpus needs count >= 1");
  FuzzSummary summary;
  std::ostringstream scenarios_json;

  for (int i = 0; i < cfg.count; ++i) {
    const std::uint64_t seed = cfg.seed + static_cast<std::uint64_t>(i);
    ScenarioSpec s = generate_scenario(seed, cfg.limits);
    if (cfg.plant) plant_corrupt_commit(s);
    if (cfg.dsan) s.dsan = true;
    if (cfg.plant_dsan) plant_dsan_conflict(s);

    const OracleReport report = run_oracle(s);
    ++summary.scenarios;
    summary.offloads += static_cast<int>(report.runs.size());
    summary.violations += static_cast<int>(report.violations.size());

    if (summary.scenarios > 1) scenarios_json << ",\n";
    scenarios_json << "    {\"seed\": " << seed << ", \"kernel\": "
                   << jstr(s.kernel) << ", \"n\": " << s.n
                   << ", \"devices\": " << s.machine.devices.size()
                   << ", \"faults\": " << s.faults.size()
                   << ", \"violations\": " << report.violations.size()
                   << ", \"digest\": " << jstr(hex64(report.digest())) << "}";

    if (report.violations.empty()) continue;

    // --- failing scenario: shrink, then emit a self-contained repro ---
    const Violation& primary = report.violations.front();
    ScenarioSpec minimal = s;
    if (cfg.shrink_failures) {
      minimal = shrink(s, primary.invariant, cfg.shrink_budget).scenario;
    }
    // The minimized scenario's own report names the algorithm/detail to
    // record (shrinking may have moved the failure between algorithms).
    const OracleReport min_report = run_oracle(minimal);
    const Violation* rec = &primary;
    for (const auto& v : min_report.violations) {
      if (v.invariant == primary.invariant) {
        rec = &v;
        break;
      }
    }

    FailureRecord fr;
    fr.seed = seed;
    fr.invariant = primary.invariant;
    fr.algorithm = rec->algorithm;
    fr.detail = rec->detail;
    fr.shrunk_devices = static_cast<int>(minimal.machine.devices.size());
    fr.shrunk_n = minimal.n;
    fr.shrunk_faults = static_cast<int>(minimal.faults.size());

    if (static_cast<int>(summary.failures.size()) < cfg.max_repros) {
      std::error_code ec;
      std::filesystem::create_directories(cfg.repro_dir, ec);
      HOMP_REQUIRE(!ec, "cannot create repro directory: " + cfg.repro_dir);
      // Determinism findings get their own stem so a corpus directory
      // separates ordering conflicts from result-level failures at a
      // glance (docs/DETERMINISM.md "Reading a dsan repro").
      const std::string stem =
          (primary.invariant == "dsan-determinism" ? "dsan-repro-"
                                                   : "repro-") +
          std::to_string(seed);
      const std::string ini_name = stem + ".ini";
      const std::string toml_path = cfg.repro_dir + "/" + stem + ".toml";
      write_file(cfg.repro_dir + "/" + ini_name,
                 mach::to_text(minimal.machine));
      write_file(toml_path, to_toml(minimal, ini_name, primary.invariant,
                                    rec->algorithm));
      fr.repro_toml = toml_path;
    }
    summary.failures.push_back(std::move(fr));
  }

  // --- deterministic summary document ---
  std::ostringstream os;
  os << "{\n";
  os << "  \"config\": {\"seed\": " << cfg.seed
     << ", \"count\": " << cfg.count
     << ", \"max_devices\": " << cfg.limits.max_devices
     << ", \"plant\": " << (cfg.plant ? "true" : "false")
     << ", \"dsan\": " << (cfg.dsan || cfg.plant_dsan ? "true" : "false")
     << "},\n";
  os << "  \"invariants\": [";
  const auto& names = invariant_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) os << ", ";
    os << jstr(names[i]);
  }
  os << "],\n";
  os << "  \"scenarios\": " << summary.scenarios << ",\n";
  os << "  \"offloads\": " << summary.offloads << ",\n";
  os << "  \"violations\": " << summary.violations << ",\n";
  os << "  \"runs\": [\n" << scenarios_json.str() << "\n  ],\n";
  os << "  \"failures\": [";
  for (std::size_t i = 0; i < summary.failures.size(); ++i) {
    const auto& f = summary.failures[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"seed\": " << f.seed << ", \"invariant\": " << jstr(f.invariant)
       << ", \"algorithm\": " << jstr(f.algorithm)
       << ", \"detail\": " << jstr(f.detail)
       << ", \"repro\": " << jstr(f.repro_toml)
       << ", \"shrunk_devices\": " << f.shrunk_devices
       << ", \"shrunk_n\": " << f.shrunk_n
       << ", \"shrunk_faults\": " << f.shrunk_faults << "}";
  }
  os << (summary.failures.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  summary.json = os.str();
  return summary;
}

ReplayOutcome replay(const std::string& toml_path) {
  std::ifstream in(toml_path);
  HOMP_REQUIRE(in.good(), "cannot open repro file: " + toml_path);
  std::ostringstream buf;
  buf << in.rdbuf();

  ParsedScenario parsed = parse_scenario(buf.str());
  HOMP_REQUIRE(!parsed.machine_file.empty(),
               "repro file records no machine_file: " + toml_path);
  HOMP_REQUIRE(!parsed.invariant.empty(),
               "repro file records no failing invariant: " + toml_path);

  // The paired .ini lives next to the .toml.
  std::filesystem::path machine_path(parsed.machine_file);
  if (machine_path.is_relative()) {
    machine_path = std::filesystem::path(toml_path).parent_path() /
                   machine_path;
  }
  parsed.scenario.machine = mach::load_machine_file(machine_path.string());
  parsed.scenario.replay = true;

  ReplayOutcome out;
  out.recorded_invariant = parsed.invariant;
  out.recorded_algorithm = parsed.algorithm;
  OracleReport report = run_oracle(parsed.scenario);
  out.violations = std::move(report.violations);
  for (const auto& v : out.violations) {
    if (v.invariant == out.recorded_invariant) {
      out.reproduced = true;
      break;
    }
  }
  return out;
}

}  // namespace homp::fuzz
