#ifndef HOMP_FUZZ_SERVE_DRIVER_H
#define HOMP_FUZZ_SERVE_DRIVER_H

/// \file serve_driver.h
/// Corpus loop of homp-fuzz's serve mode (docs/FUZZING.md "--serve"):
/// generate serve scenarios seed, seed+1, ..., run each through the
/// serve-invariant oracle, greedily shrink failures (drop jobs, drop
/// tenants, halve sizes, clear fault scripts) and emit self-contained
/// serve-repro-<seed>.{ini,toml} pairs, then render one deterministic
/// summary — byte-identical for identical (seed, count, limits).

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/serve_oracle.h"
#include "fuzz/serve_scenario.h"

namespace homp::fuzz {

struct ServeFuzzConfig {
  std::uint64_t seed = 1;  ///< first scenario seed; scenario i uses seed+i
  int count = 100;         ///< scenarios to run
  ServeGeneratorLimits limits;

  /// Directory for serve-repro-<seed>.{ini,toml} pairs; created on demand.
  std::string repro_dir = "machines/fuzz";

  bool shrink_failures = true;
  int shrink_budget = 48;  ///< oracle runs the shrinker may spend per failure

  /// Stop emitting repro files (but keep counting) after this many
  /// failures, so a systematically broken build cannot flood the disk.
  int max_repros = 8;

  /// Run every scenario's first pass under homp-dsan
  /// (docs/DETERMINISM.md); conflicts surface as "dsan-determinism".
  bool dsan = false;
};

/// One failing serve scenario as the summary reports it.
struct ServeFailureRecord {
  std::uint64_t seed = 0;
  std::string invariant;  ///< primary (first-reported) failing invariant
  std::string detail;
  std::string repro_toml;  ///< empty when max_repros was exhausted
  int shrunk_tenants = 0;
  int shrunk_jobs = 0;
  int shrunk_faulty_tenants = 0;  ///< tenants whose fault script survived
};

struct ServeFuzzSummary {
  int scenarios = 0;
  int jobs = 0;  ///< submissions across the corpus (first runs only)
  std::size_t completed = 0;
  std::size_t failed = 0;     ///< contained terminal kFail records
  std::size_t cancelled = 0;  ///< terminal kCancelled records
  std::size_t rejected = 0;
  std::size_t breaker_trips = 0;
  int violations = 0;
  std::vector<ServeFailureRecord> failures;
  std::string json;  ///< the deterministic summary document
};

/// Run the serve corpus. Throws ConfigError only for unusable
/// configuration; scenario failures are data, not errors.
ServeFuzzSummary run_serve_fuzz(const ServeFuzzConfig& cfg);

/// Re-run the serve scenario recorded in a serve-repro .toml (the paired
/// machine .ini is resolved relative to the .toml's directory).
struct ServeReplayOutcome {
  bool reproduced = false;
  std::string recorded_invariant;
  std::vector<Violation> violations;  ///< what this run actually reported
};

ServeReplayOutcome serve_replay(const std::string& toml_path);

}  // namespace homp::fuzz

#endif  // HOMP_FUZZ_SERVE_DRIVER_H
