#include "fuzz/shrink.h"

#include <algorithm>

#include "fuzz/oracle.h"
#include "sim/fault.h"

namespace homp::fuzz {

namespace {

bool still_fails(const ScenarioSpec& candidate, const std::string& invariant,
                 int& runs_left) {
  if (runs_left <= 0) return false;
  --runs_left;
  const OracleReport r = run_oracle(candidate);
  for (const auto& v : r.violations) {
    if (v.invariant == invariant) return true;
  }
  return false;
}

/// Remove accelerator `dev` (a device index >= 1) and everything that
/// referenced it: its fault-script entries go away, higher device ids
/// shift down, and links no device uses anymore are pruned.
ScenarioSpec drop_device(const ScenarioSpec& s, int dev) {
  ScenarioSpec c = s;
  c.machine.devices.erase(c.machine.devices.begin() + dev);
  std::erase_if(c.faults, [dev](const sim::ScriptedFault& f) {
    return f.device_id == dev;
  });
  for (auto& f : c.faults) {
    if (f.device_id > dev) --f.device_id;
  }
  // Prune now-unused links, remapping the indices devices carry.
  std::vector<int> remap(c.machine.links.size(), -1);
  std::vector<mach::LinkDescriptor> kept;
  for (const auto& d : c.machine.devices) {
    if (d.link == mach::kNoLink) continue;
    auto& slot = remap[static_cast<std::size_t>(d.link)];
    if (slot < 0) {
      slot = static_cast<int>(kept.size());
      kept.push_back(c.machine.links[static_cast<std::size_t>(d.link)]);
    }
  }
  for (auto& d : c.machine.devices) {
    if (d.link != mach::kNoLink) {
      d.link = remap[static_cast<std::size_t>(d.link)];
    }
  }
  c.machine.links = std::move(kept);
  return c;
}

}  // namespace

ShrinkResult shrink(const ScenarioSpec& failing, const std::string& invariant,
                    int max_oracle_runs) {
  ShrinkResult out;
  out.scenario = failing;
  int runs_left = max_oracle_runs;

  bool progressed = true;
  while (progressed && runs_left > 0) {
    progressed = false;
    ScenarioSpec& cur = out.scenario;

    // 1. Fewer devices. Iterate back to front so an accepted drop leaves
    //    earlier indices valid; always keep the host plus one accelerator.
    for (int dev = static_cast<int>(cur.machine.devices.size()) - 1;
         dev >= 1 && cur.machine.devices.size() > 2; --dev) {
      ScenarioSpec cand = drop_device(cur, dev);
      if (still_fails(cand, invariant, runs_left)) {
        cur = std::move(cand);
        ++out.accepted;
        progressed = true;
      }
    }

    // 2. Smaller trip count (respecting the kernel's size floor).
    while (cur.n > min_trip(cur.kernel) && runs_left > 0) {
      ScenarioSpec cand = cur;
      cand.n = quantize_trip(cand.kernel, cand.n / 2);
      if (cand.n == cur.n) break;
      if (!still_fails(cand, invariant, runs_left)) break;
      cur = std::move(cand);
      ++out.accepted;
      progressed = true;
    }

    // 3. Fewer fault-script entries.
    for (int i = static_cast<int>(cur.faults.size()) - 1;
         i >= 0 && runs_left > 0; --i) {
      ScenarioSpec cand = cur;
      cand.faults.erase(cand.faults.begin() + i);
      if (still_fails(cand, invariant, runs_left)) {
        cur = std::move(cand);
        ++out.accepted;
        progressed = true;
      }
    }

    // 4. Quiet rate-based fault profiles, one device at a time.
    for (std::size_t d = 1; d < cur.machine.devices.size() && runs_left > 0;
         ++d) {
      if (!cur.machine.devices[d].fault.any()) continue;
      ScenarioSpec cand = cur;
      cand.machine.devices[d].fault = sim::FaultProfile{};
      if (still_fails(cand, invariant, runs_left)) {
        cur = std::move(cand);
        ++out.accepted;
        progressed = true;
      }
    }
  }
  out.oracle_runs = max_oracle_runs - runs_left;
  return out;
}

}  // namespace homp::fuzz
