#ifndef HOMP_FUZZ_DRIVER_H
#define HOMP_FUZZ_DRIVER_H

/// \file driver.h
/// Corpus loop of the homp-fuzz harness (docs/FUZZING.md): generate
/// scenarios seed, seed+1, ..., run each through the differential oracle,
/// shrink failures and emit self-contained repro files, and render one
/// deterministic summary — byte-identical for identical (seed, count,
/// limits), which the determinism acceptance test pins.

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/oracle.h"
#include "fuzz/scenario.h"

namespace homp::fuzz {

struct FuzzConfig {
  std::uint64_t seed = 1;  ///< first scenario seed; scenario i uses seed+i
  int count = 100;         ///< scenarios to run
  GeneratorLimits limits;

  /// Directory for repro-<seed>.{ini,toml} pairs; created on demand.
  std::string repro_dir = "machines/fuzz";

  /// Minimize failing scenarios before emitting their repro.
  bool shrink_failures = true;
  int shrink_budget = 48;  ///< oracle runs the shrinker may spend per failure

  /// Deliberately plant the acceptance-test violation into every
  /// scenario: integrity verification off plus a scripted silent compute
  /// corruption (scenario.h plant_corrupt_commit).
  bool plant = false;

  /// Sweep the corpus under homp-dsan (docs/DETERMINISM.md): every
  /// scenario runs with the determinism sanitizer attached; conflicts
  /// surface as "dsan-determinism" failures and dsan-repro-<seed> files.
  bool dsan = false;

  /// Self-test plant: a same-timestamp write-write conflict dsan must
  /// catch (scenario.h plant_dsan_conflict). Implies dsan mode.
  bool plant_dsan = false;

  /// Stop emitting repro files (but keep counting) after this many
  /// failures, so a systematically broken build cannot flood the disk.
  int max_repros = 8;
};

/// One failing scenario as the summary reports it.
struct FailureRecord {
  std::uint64_t seed = 0;
  std::string invariant;  ///< primary (first-reported) failing invariant
  std::string algorithm;
  std::string detail;
  std::string repro_toml;  ///< empty when max_repros was exhausted
  int shrunk_devices = 0;
  long long shrunk_n = 0;
  int shrunk_faults = 0;
};

struct FuzzSummary {
  int scenarios = 0;
  int offloads = 0;    ///< individual algorithm runs across the corpus
  int violations = 0;  ///< total invariant violations observed
  std::vector<FailureRecord> failures;
  std::string json;  ///< the deterministic summary document
};

/// Run the corpus. Throws ConfigError only for unusable configuration
/// (count < 1, unwritable repro dir); scenario failures are data, not
/// errors.
FuzzSummary run_fuzz(const FuzzConfig& cfg);

/// Re-run the scenario recorded in a repro .toml (the paired machine .ini
/// is resolved relative to the .toml's directory). Returns whether the
/// recorded invariant failed again.
struct ReplayOutcome {
  bool reproduced = false;
  std::string recorded_invariant;
  std::string recorded_algorithm;
  std::vector<Violation> violations;  ///< what this run actually reported
};

ReplayOutcome replay(const std::string& toml_path);

}  // namespace homp::fuzz

#endif  // HOMP_FUZZ_DRIVER_H
