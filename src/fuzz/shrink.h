#ifndef HOMP_FUZZ_SHRINK_H
#define HOMP_FUZZ_SHRINK_H

/// \file shrink.h
/// Greedy scenario minimization for homp-fuzz (docs/FUZZING.md).
///
/// Given a scenario that violates an invariant, the shrinker tries ever
/// smaller candidates — drop an accelerator, halve the trip count, drop a
/// fault-script entry, zero a device's fault rates — and keeps a
/// candidate whenever the oracle still reports the *same* invariant
/// failing (any algorithm). The loop repeats until a full pass makes no
/// progress or the oracle-run budget is exhausted, so a repro file
/// describes the smallest machine/loop/fault combination that still
/// exhibits the failure.

#include <string>

#include "fuzz/scenario.h"

namespace homp::fuzz {

struct ShrinkResult {
  ScenarioSpec scenario;  ///< the minimized scenario
  int oracle_runs = 0;    ///< budget spent
  int accepted = 0;       ///< candidates that kept the failure
};

/// Minimize `failing` while `invariant` keeps failing. `max_oracle_runs`
/// bounds total work (each oracle run sweeps all ten algorithms).
ShrinkResult shrink(const ScenarioSpec& failing, const std::string& invariant,
                    int max_oracle_runs = 64);

}  // namespace homp::fuzz

#endif  // HOMP_FUZZ_SHRINK_H
