#ifndef HOMP_FUZZ_SERVE_SCENARIO_H
#define HOMP_FUZZ_SERVE_SCENARIO_H

/// \file serve_scenario.h
/// Serve-mode scenario generation for the homp-fuzz harness
/// (docs/FUZZING.md "--serve").
///
/// A serve scenario is one complete multi-tenant serving run: a
/// synthesized machine, a tenant roster (priorities, weights, queue
/// depths, per-tenant fault scripts — including "poison" tenants whose
/// jobs deterministically lose every granted device), a timed job list
/// (sizes, device asks, deadlines, algorithms) and the server knob
/// combination (shed ladder, circuit breaker, materialization). Like the
/// single-offload scenarios, generation is a pure function of (seed,
/// limits) and the TOML serialization round-trips exactly, so a failing
/// run shrinks to a self-contained `serve-repro-<seed>.toml` +
/// machine `.ini` pair that `homp-fuzz --replay` re-executes bit-for-bit.

#include <cstdint>
#include <string>
#include <vector>

#include "machine/device.h"
#include "serve/server.h"
#include "serve/tenant.h"

namespace homp::fuzz {

/// Parameter ranges the serve generator draws from.
struct ServeGeneratorLimits {
  int max_devices = 5;    ///< total devices including the host (>= 2)
  int max_tenants = 4;    ///< tenant roster cap (>= 1)
  int max_jobs = 14;      ///< timed submissions per scenario (>= 1)
  long long max_trip = 2048;  ///< problem-size cap (per-kernel quantized)
  bool allow_faults = true;   ///< false = admission/scheduling space only
};

/// One timed job submission.
struct ServeJobEntry {
  int tenant = 0;      ///< index into ServeScenarioSpec::tenants
  double at_s = 0.0;   ///< arrival (virtual seconds)
  serve::JobSpec job;  ///< kernel, n, devices, deadline_s, algorithm
};

/// One generated (or replayed) serve-mode scenario.
struct ServeScenarioSpec {
  std::uint64_t seed = 0;

  mach::MachineDescriptor machine;
  serve::ServeOptions options;
  std::vector<serve::TenantSpec> tenants;
  std::vector<ServeJobEntry> jobs;

  /// Run the first oracle pass under an attached homp-dsan context
  /// (docs/DETERMINISM.md). Serialized, so dsan repros replay in kind.
  bool dsan = false;

  /// Set (not serialized) when loaded from a repro file.
  bool replay = false;
};

/// Deterministically generate the serve scenario for `seed`. The result
/// always validates: the machine passes validate(), every job references
/// an existing tenant, sizes are kernel-quantized, and hang-capable
/// faults only appear because the server's base options always arm the
/// watchdog (an unwatched hang would stall the drain — a scenario bug).
ServeScenarioSpec generate_serve_scenario(
    std::uint64_t seed, const ServeGeneratorLimits& limits = {});

/// Serialize everything except the machine ([serve], [tenant.N],
/// [job.N] sections; doubles at %.17g so the file round-trips exactly).
/// `machine_file` pairs the scenario with its .ini; `invariant` records
/// the failure being reproduced.
std::string serve_to_toml(const ServeScenarioSpec& s,
                          const std::string& machine_file = "",
                          const std::string& invariant = "");

/// Parsed serve repro: the scenario (machine left empty — load it from
/// `machine_file`) plus the recorded failure.
struct ParsedServeScenario {
  ServeScenarioSpec scenario;
  std::string machine_file;
  std::string invariant;
};

/// Parse serve_to_toml() output. Throws ConfigError with a line number
/// on malformed input.
ParsedServeScenario parse_serve_scenario(const std::string& text);

/// Whether repro-file text is a serve-mode scenario (has a [serve]
/// section) — the --replay dispatcher's sniff.
bool is_serve_scenario(const std::string& text);

}  // namespace homp::fuzz

#endif  // HOMP_FUZZ_SERVE_SCENARIO_H
