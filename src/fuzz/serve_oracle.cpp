#include "fuzz/serve_oracle.h"

#include <cstdio>
#include <optional>
#include <set>
#include <sstream>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "serve/report.h"
#include "sim/dsan.h"

namespace homp::fuzz {

namespace {

std::uint64_t fnv64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Everything one server run leaves behind for the checks.
struct RunOutcome {
  bool threw = false;
  std::string what;
  serve::ServeReport report;
  std::string summary_json;
  std::size_t retained = 0;
  std::size_t live_events = 0;
  std::size_t live_gens = 0;
  std::vector<std::string> dsan_violations;
};

RunOutcome run_once(const ServeScenarioSpec& s, bool with_dsan = false) {
  RunOutcome out;
  sim::dsan::Context dsan_ctx;
  try {
    serve::OffloadServer server(s.machine, s.tenants, s.options);
    // Only the first run attaches the sanitizer: the determinism
    // double-run would otherwise report every conflict twice.
    std::optional<sim::dsan::Scope> dsan_scope;
    if (with_dsan && sim::dsan::compiled_in()) dsan_scope.emplace(dsan_ctx);
    for (const auto& e : s.jobs) {
      const std::string tname = s.tenants[static_cast<std::size_t>(e.tenant)].name;
      const serve::JobSpec job = e.job;
      // `server` outlives every arrival: run() drains the engine before
      // this frame returns.  homp-lint: allow(HL001)
      server.engine().schedule_after(e.at_s, [&server, tname, job] {
        server.submit(tname, job);
      });
    }
    server.run();
    out.report = server.report();
    std::ostringstream ss;
    out.report.write_summary_json(ss);
    out.summary_json = ss.str();
    out.retained = server.retained_jobs();
    out.live_events = server.engine().live_events();
    out.live_gens = server.engine().live_generations();
  } catch (const std::exception& e) {
    out.threw = true;
    out.what = e.what();
  } catch (...) {
    out.threw = true;
    out.what = "non-standard exception";
  }
  dsan_ctx.finish();
  for (const auto& v : dsan_ctx.violations()) {
    out.dsan_violations.push_back(v.to_string());
  }
  return out;
}

void violate(ServeOracleReport& r, const std::string& invariant,
             const std::string& detail) {
  r.violations.push_back(Violation{invariant, "serve", detail});
}

/// Sort validate()'s mixed breach list into the serve catalog by the
/// stable message shapes report.cpp emits.
const char* classify_breach(const std::string& msg) {
  if (msg.find("FIFO") != std::string::npos) return "serve-fifo";
  if (msg.find("audit") != std::string::npos) return "serve-audit";
  if (msg.find("but finished") != std::string::npos) return "serve-accounting";
  return "serve-conservation";
}

}  // namespace

std::uint64_t ServeOracleReport::digest() const noexcept {
  return fnv64(summary_json);
}

const std::vector<std::string>& serve_invariant_names() {
  static const std::vector<std::string> names = {
      "serve-progress",   "serve-conservation", "serve-fifo",
      "serve-audit",      "serve-accounting",   "serve-shed-legality",
      "serve-metrics",    "serve-memory-flat",  "serve-determinism",
      "dsan-determinism",
  };
  return names;
}

ServeOracleReport run_serve_oracle(const ServeScenarioSpec& s) {
  using serve::JobOutcome;
  using serve::ServeEventKind;
  ServeOracleReport out;

  const RunOutcome a = run_once(s, s.dsan);
  if (a.threw) {
    violate(out, "serve-progress", "run aborted: " + a.what);
    return out;
  }
  for (const auto& v : a.dsan_violations) {
    out.violations.push_back(Violation{"dsan-determinism", "serve", v});
  }
  const serve::ServeReport& rep = a.report;
  out.summary_json = a.summary_json;
  for (const auto& c : rep.counts) {
    out.completed += c.completed;
    out.failed += c.failed;
    out.cancelled += c.cancelled;
    out.rejected += c.rejected();
    out.breaker_trips += c.breaker_trips;
  }

  // conservation / fifo / audit-monotonicity / accounting, re-derived
  // from the records by the report itself.
  for (const auto& breach : rep.validate()) {
    violate(out, classify_breach(breach), breach);
  }

  // serve-audit: every terminal record has a matching terminal event.
  std::set<std::pair<int, std::uint64_t>> terminal_events;
  for (const auto& e : rep.events) {
    if (e.kind == ServeEventKind::kComplete ||
        e.kind == ServeEventKind::kFail || e.kind == ServeEventKind::kCancel) {
      terminal_events.insert({static_cast<int>(e.kind), e.job_id});
    }
  }
  for (const auto& j : rep.jobs) {
    ServeEventKind want = ServeEventKind::kComplete;
    if (j.outcome == JobOutcome::kFail) want = ServeEventKind::kFail;
    if (j.outcome == JobOutcome::kCancelled) want = ServeEventKind::kCancel;
    if (terminal_events.count({static_cast<int>(want), j.job_id}) == 0) {
      violate(out, "serve-audit",
              "job " + std::to_string(j.job_id) + " (" + j.tenant +
                  ") has no " + std::string(serve::to_string(want)) +
                  " audit event");
    }
  }

  // serve-accounting: the record list agrees with the counters.
  for (std::size_t t = 0; t < rep.tenants.size(); ++t) {
    std::size_t completed = 0, failed = 0, cancelled = 0;
    for (const auto& j : rep.jobs) {
      if (j.tenant != rep.tenants[t]) continue;
      if (j.outcome == JobOutcome::kCompleted) ++completed;
      else if (j.outcome == JobOutcome::kFail) ++failed;
      else ++cancelled;
    }
    const auto& c = rep.counts[t];
    if (completed != c.completed || failed != c.failed ||
        cancelled != c.cancelled) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "records %zu/%zu/%zu vs counters %zu/%zu/%zu "
                    "(completed/failed/cancelled)",
                    completed, failed, cancelled, c.completed, c.failed,
                    c.cancelled);
      violate(out, "serve-accounting", rep.tenants[t] + ": " + buf);
    }
  }

  // serve-shed-legality: transitions contiguous in the audit, levels in
  // [0, 3], and the final level matches the last transition.
  int level = 0;
  for (const auto& e : rep.events) {
    if (e.kind != ServeEventKind::kShedLevel) continue;
    int from = -1, to = -1;
    if (std::sscanf(e.detail.c_str(), "L%d -> L%d", &from, &to) != 2) {
      violate(out, "serve-shed-legality",
              "unparseable shed transition '" + e.detail + "'");
      continue;
    }
    if (from != level || to == from || to < 0 || to > 3) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "illegal transition L%d -> L%d at level L%d", from, to,
                    level);
      violate(out, "serve-shed-legality", buf);
    }
    level = to;
  }
  if (level != rep.final_shed_level) {
    violate(out, "serve-shed-legality",
            "final level " + std::to_string(rep.final_shed_level) +
                " does not match last transition L" + std::to_string(level));
  }

  // serve-metrics: the exported registry agrees with the report.
  {
    obs::MetricsRegistry reg;
    rep.export_metrics(reg);
    for (std::size_t t = 0; t < rep.tenants.size(); ++t) {
      const auto& c = rep.counts[t];
      const std::string lbl = "tenant=\"" + rep.tenants[t] + "\"";
      const struct {
        const char* name;
        std::size_t want;
      } probes[] = {
          {obs::names::kServeSubmitted, c.submitted},
          {obs::names::kServeAdmitted, c.admitted},
          {obs::names::kServeCompleted, c.completed},
          {obs::names::kServeFailed, c.failed},
          {obs::names::kServeCancelled, c.cancelled},
          {obs::names::kServeBreakerTrips, c.breaker_trips},
      };
      for (const auto& p : probes) {
        const double got = reg.value(p.name, lbl);
        if (got != static_cast<double>(p.want)) {
          violate(out, "serve-metrics",
                  rep.tenants[t] + ": " + p.name + " exported " +
                      std::to_string(got) + ", report says " +
                      std::to_string(p.want));
        }
      }
    }
  }

  // serve-memory-flat: no retained jobs, no pending timers, no live
  // generations after the drain.
  if (a.retained != 0) {
    violate(out, "serve-memory-flat",
            std::to_string(a.retained) + " job objects retained after drain");
  }
  if (a.live_events != 0) {
    violate(out, "serve-memory-flat",
            std::to_string(a.live_events) + " engine events pending after drain");
  }
  if (a.live_gens != 0) {
    violate(out, "serve-memory-flat",
            std::to_string(a.live_gens) +
                " timer generations still live after drain");
  }

  // serve-determinism: a second run must reproduce the summary JSON
  // byte for byte.
  const RunOutcome b = run_once(s);
  if (b.threw) {
    violate(out, "serve-determinism", "second run aborted: " + b.what);
  } else if (b.summary_json != a.summary_json) {
    violate(out, "serve-determinism",
            "summary JSON differs between same-seed runs");
  }

  return out;
}

}  // namespace homp::fuzz
