#ifndef HOMP_FUZZ_SCENARIO_H
#define HOMP_FUZZ_SCENARIO_H

/// \file scenario.h
/// Deterministic scenario generation for the homp-fuzz differential
/// harness (docs/FUZZING.md).
///
/// A scenario is everything one oracle run needs: a synthesized machine
/// topology, a kernel case and problem size, scheduler tuning, seeds, a
/// fault script and the resilience toggles. Generation is a pure function
/// of (seed, limits): the same seed always yields byte-identical machine
/// text and scenario serialization, which is what makes a one-line repro
/// (`homp-fuzz --replay file`) possible.
///
/// Scenarios serialize to a TOML-style text format (`[scenario]`,
/// `[sched]`, `[options]`, `[fault.N]` sections) that round-trips exactly
/// — doubles are printed with max_digits10 precision — and the machine
/// is emitted separately through mach::to_text so a repro pairs one
/// `repro-<seed>.ini` with one `repro-<seed>.toml`.

#include <cstdint>
#include <string>
#include <vector>

#include "machine/device.h"
#include "sched/scheduler.h"
#include "sim/fault.h"

namespace homp::fuzz {

/// Parameter ranges the generator draws from. The defaults keep scenarios
/// inside the envelope the resilience test-suite exercises; widening them
/// is how the harness explores new territory.
struct GeneratorLimits {
  int max_devices = 6;       ///< total devices including the host (>= 1)
  long long max_trip = 4096;  ///< problem-size cap (per-kernel quantized)
  int max_script_entries = 4;  ///< scripted faults per scenario
  bool allow_faults = true;    ///< false = topology/kernel space only
};

/// One generated (or replayed) harness scenario.
struct ScenarioSpec {
  std::uint64_t seed = 0;  ///< the generation seed; names the scenario

  mach::MachineDescriptor machine;

  std::string kernel = "axpy";  ///< kernels::make_case name
  long long n = 1024;           ///< problem size (kernel-quantized)

  /// Tuning shared by every algorithm family; the oracle overwrites
  /// `sched.kind` as it sweeps all ten algorithms.
  sched::SchedulerConfig sched;

  std::uint64_t noise_seed = 42;
  std::uint64_t fault_seed = 0x5eedfa;
  std::vector<sim::ScriptedFault> faults;

  bool integrity = true;
  bool watchdog = true;
  bool parallel_offload = true;

  /// Engine step budget for each offload (OffloadOptions::harness);
  /// sized from the scenario's device count and trip count so a healthy
  /// run never trips it but a livelock always does.
  long long step_budget = 0;

  /// Run the oracle sweep under an attached homp-dsan context
  /// (docs/DETERMINISM.md); any same-timestamp conflict becomes a
  /// "dsan-determinism" finding. Serialized, so a dsan repro replays in
  /// dsan mode without extra flags.
  bool dsan = false;

  /// Self-test plant: schedule a same-timestamp write-write conflict on
  /// an ordered cell inside the oracle run; dsan must catch it.
  bool plant_dsan_conflict = false;

  /// Set (not serialized) when this scenario was loaded from a repro
  /// file: the oracle marks its offloads as replays, which makes
  /// OffloadOptions::validate() insist on the recorded fault seed.
  bool replay = false;

  /// Number of loop iterations the kernel case will carry (== n for the
  /// 1-D kernels, n rows for the 2-D ones).
  long long loop_iterations() const;
};

/// Deterministically generate the scenario for `seed` within `limits`.
/// The result always validates: machine.validate() passes, the kernel /
/// size combination is constructible, fault scripts reference existing
/// accelerators only, and corruption entries appear only with integrity
/// enabled. Device 0 (the host) never faults — the anchor device that
/// keeps every scenario completable.
ScenarioSpec generate_scenario(std::uint64_t seed,
                               const GeneratorLimits& limits = {});

/// Clamp `n` to a valid size for `kernel` (bm2d: multiple of 16, >= 32;
/// stencil2d: >= 8; everything else: >= 1).
long long quantize_trip(const std::string& kernel, long long n);

/// Smallest valid problem size for `kernel` — the shrinker's floor.
long long min_trip(const std::string& kernel);

/// Mutate `s` into the planted-violation configuration the acceptance
/// test requires: integrity verification disabled plus a scripted
/// silent compute corruption on the first accelerator. The oracle's
/// reference / differential invariants must catch it.
void plant_corrupt_commit(ScenarioSpec& s);

/// Mutate `s` into the dsan self-test configuration: dsan mode on plus a
/// planted same-timestamp write-write conflict on an ordered cell. The
/// oracle's "dsan-determinism" invariant must catch it.
void plant_dsan_conflict(ScenarioSpec& s);

/// Serialize everything except the machine (see file comment). The
/// optional `machine_file` is recorded so replay can find the paired
/// .ini; `invariant` / `algorithm` record the failure being reproduced.
std::string to_toml(const ScenarioSpec& s,
                    const std::string& machine_file = "",
                    const std::string& invariant = "",
                    const std::string& algorithm = "");

/// Parsed repro file: the scenario (machine left empty — load it from
/// `machine_file`) plus the recorded failure.
struct ParsedScenario {
  ScenarioSpec scenario;
  std::string machine_file;
  std::string invariant;
  std::string algorithm;
};

/// Parse to_toml() output. Throws ConfigError with a line number on
/// malformed input.
ParsedScenario parse_scenario(const std::string& text);

}  // namespace homp::fuzz

#endif  // HOMP_FUZZ_SCENARIO_H
