#include "fuzz/oracle.h"

#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>

#include "common/checksum.h"
#include "common/error.h"
#include "kernels/case.h"
#include "kernels/sum.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "runtime/metrics_export.h"
#include "runtime/runtime.h"
#include "sched/algorithm.h"
#include "sim/dsan.h"
#include "sim/engine.h"

namespace homp::fuzz {

namespace {

std::uint64_t bits_of(double v) noexcept {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

rt::OffloadOptions options_for(const ScenarioSpec& s,
                               sched::AlgorithmKind kind,
                               const rt::Runtime& runtime) {
  rt::OffloadOptions o;
  o.device_ids = runtime.all_devices();
  o.sched = s.sched;
  o.sched.kind = kind;
  o.noise_seed = s.noise_seed;
  o.fault.seed = s.fault_seed;
  o.fault.scripted = s.faults;
  o.watchdog.enabled = s.watchdog;
  o.integrity.enabled = s.integrity;
  o.parallel_offload = s.parallel_offload;
  o.harness.step_budget = s.step_budget;
  o.harness.capture_result_checksum = true;
  if (s.replay) {
    o.harness.replay = true;
    o.harness.replay_seed = s.fault_seed;
  }
  o.collect_audit = true;
  return o;
}

struct Checker {
  const ScenarioSpec& s;
  std::vector<Violation>& out;
  std::string algo;

  void fail(const std::string& invariant, const std::string& detail) {
    out.push_back({invariant, algo, detail});
  }

  void check_run(const rt::OffloadResult& res, const rt::LoopKernel& kernel,
                 kern::KernelCase& c) {
    check_conservation(res, kernel);
    check_reference(res, c);
    check_recovery_legality(res);
    check_audit(res, kernel);
    check_metrics(res);
    check_bounds(res);
  }

  void check_conservation(const rt::OffloadResult& res,
                          const rt::LoopKernel& kernel) {
    const long long trip = kernel.iterations.size();
    if (res.total_iterations() != trip) {
      fail("conservation",
           "committed " + std::to_string(res.total_iterations()) +
               " iterations, loop has " + std::to_string(trip));
    }
  }

  void check_reference(const rt::OffloadResult& res, kern::KernelCase& c) {
    if (auto* sum = dynamic_cast<kern::SumCase*>(&c)) {
      sum->set_result(res.reduction);
    }
    std::string why;
    if (!c.verify(&why)) fail("reference", why);
  }

  void check_recovery_legality(const rt::OffloadResult& res) {
    // Event stream ordering and causal preconditions
    // (docs/RESILIENCE.md state machine).
    double last = -1.0;
    std::size_t speculated = 0, spec_committed = 0, abandoned = 0;
    std::size_t vote_opened = 0, vote_committed = 0;
    std::map<int, bool> readmitted;
    for (const auto& e : res.recovery_events) {
      if (e.time < last) {
        fail("recovery-legality",
             "recovery events out of time order at t=" +
                 std::to_string(e.time));
        return;
      }
      last = e.time;
      switch (e.action) {
        case rt::RecoveryAction::kSpeculated:
          ++speculated;
          break;
        case rt::RecoveryAction::kSpecCommitted:
          ++spec_committed;
          break;
        case rt::RecoveryAction::kTardyAbandoned:
          ++abandoned;
          break;
        case rt::RecoveryAction::kReadmitted:
          readmitted[e.device_id] = true;
          break;
        case rt::RecoveryAction::kProbePassed:
        case rt::RecoveryAction::kPromoted:
          if (!readmitted[e.device_id]) {
            fail("recovery-legality",
                 std::string(to_string(e.action)) + " on device " +
                     std::to_string(e.device_id) +
                     " without a prior readmission");
            return;
          }
          break;
        case rt::RecoveryAction::kVoteOpened:
          ++vote_opened;
          break;
        case rt::RecoveryAction::kVoteCommitted:
          ++vote_committed;
          break;
        default:
          break;
      }
      if (spec_committed + abandoned > 2 * speculated) {
        fail("recovery-legality",
             "more speculation outcomes than speculations");
        return;
      }
      if (vote_committed > vote_opened) {
        fail("recovery-legality", "vote committed before any vote opened");
        return;
      }
    }
    for (const auto& d : res.devices) {
      if (d.spec_copies_won > d.spec_copies_run) {
        fail("recovery-legality",
             "device '" + d.device_name + "' won " +
                 std::to_string(d.spec_copies_won) + " of " +
                 std::to_string(d.spec_copies_run) + " speculative copies");
      }
      if (d.integrity_failures > d.integrity_checks) {
        fail("recovery-legality",
             "device '" + d.device_name +
                 "' has more integrity failures than checks");
      }
      if (!s.integrity && d.integrity_checks > 0) {
        fail("recovery-legality",
             "device '" + d.device_name +
                 "' ran integrity checks with verification disabled");
      }
      if (d.quarantined && d.quarantine_count == 0) {
        fail("recovery-legality",
             "device '" + d.device_name +
                 "' quarantined with zero quarantine count");
      }
      if (d.readmissions > d.quarantine_count) {
        fail("recovery-legality",
             "device '" + d.device_name +
                 "' readmitted more often than quarantined");
      }
    }
  }

  void check_audit(const rt::OffloadResult& res,
                   const rt::LoopKernel& kernel) {
    double last = -1.0;
    std::size_t assigned = 0;
    const long long lo = kernel.iterations.lo;
    const long long hi = kernel.iterations.hi;
    for (const auto& d : res.decisions) {
      if (d.time < last) {
        fail("audit-consistency", "decision audit out of time order at t=" +
                                      std::to_string(d.time));
        return;
      }
      last = d.time;
      if (d.kind == rt::DecisionKind::kChunkAssigned) {
        ++assigned;
        if (d.range.lo < lo || d.range.hi > hi || d.range.lo >= d.range.hi) {
          fail("audit-consistency",
               "assigned chunk [" + std::to_string(d.range.lo) + ", " +
                   std::to_string(d.range.hi) + ") outside loop domain [" +
                   std::to_string(lo) + ", " + std::to_string(hi) + ")");
          return;
        }
      }
    }
    // Every scheduler-issued chunk must appear in the audit (requeues and
    // speculative copies may add more records, never fewer).
    if (assigned < res.chunks_issued) {
      fail("audit-consistency",
           "audit holds " + std::to_string(assigned) +
               " chunk assignments, scheduler issued " +
               std::to_string(res.chunks_issued));
    }
  }

  void check_metrics(const rt::OffloadResult& res) {
    obs::MetricsRegistry reg;
    rt::collect_metrics(res, reg);
    if (reg.value(obs::names::kOffloads, "") != 1.0) {
      fail("metrics-consistency", "homp_offloads_total != 1 for one offload");
    }
    if (reg.value(obs::names::kChunksIssued, "") !=
        static_cast<double>(res.chunks_issued)) {
      fail("metrics-consistency",
           "homp_chunks_issued_total disagrees with OffloadResult");
    }
    for (const auto& d : res.devices) {
      const std::string label = "device=\"" + d.device_name + "\"";
      if (reg.value(obs::names::kDeviceIterations, label) !=
          static_cast<double>(d.iterations)) {
        fail("metrics-consistency",
             "homp_device_iterations_total mismatch for device '" +
                 d.device_name + "'");
        return;
      }
    }
  }

  void check_bounds(const rt::OffloadResult& res) {
    if (!(res.total_time >= 0.0) || !std::isfinite(res.total_time)) {
      fail("imbalance-bounds",
           "total_time not finite/non-negative: " +
               std::to_string(res.total_time));
      return;
    }
    const auto im = res.imbalance();
    if (!(im.fraction() >= 0.0 && im.fraction() <= 1.0) ||
        !std::isfinite(im.fraction())) {
      fail("imbalance-bounds",
           "imbalance fraction outside [0, 1]: " +
               std::to_string(im.fraction()));
    }
    for (const auto& d : res.devices) {
      if (d.finish_time > res.total_time * (1.0 + 1e-12) + 1e-15) {
        fail("imbalance-bounds",
             "device '" + d.device_name + "' finished at " +
                 std::to_string(d.finish_time) + " after offload end " +
                 std::to_string(res.total_time));
        return;
      }
    }
    if (res.engine_events == 0) {
      fail("imbalance-bounds", "offload completed with zero engine events");
    }
  }
};

}  // namespace

const std::vector<std::string>& invariant_names() {
  static const std::vector<std::string> kNames = {
      "progress",          "conservation",
      "reference",         "differential-results",
      "recovery-legality", "audit-consistency",
      "metrics-consistency", "imbalance-bounds",
      "dsan-determinism",
  };
  return kNames;
}

std::uint64_t OracleReport::digest() const noexcept {
  std::uint64_t d = 0x0fffab1e;
  for (const auto& r : runs) {
    d = mix64(d ^ (r.completed ? 1 : 0));
    d = mix64(d ^ static_cast<std::uint64_t>(r.iterations));
    d = mix64(d ^ r.chunks_issued);
    d = mix64(d ^ r.engine_events);
    d = mix64(d ^ r.result_checksum);
    d = mix64(d ^ bits_of(r.reduction));
    d = mix64(d ^ bits_of(r.total_time));
    d = mix64(d ^ (r.degraded ? 2 : 0));
  }
  d = mix64(d ^ violations.size());
  return d;
}

namespace {

/// The dsan self-test plant: two causally unrelated events at the same
/// virtual timestamp both write an ordered cell — the exact shape the
/// sanitizer exists to catch. Runs on its own micro-engine under the
/// caller's active dsan scope.
void run_planted_dsan_conflict() {
  sim::Engine e;
  sim::dsan::Cell cell("dsan/selftest", sim::dsan::CellKind::kOrdered);
  e.schedule_at(1.0, [c = &cell] { HOMP_DSAN_WRITE(*c); });
  e.schedule_at(1.0, [c = &cell] { HOMP_DSAN_WRITE(*c); });
  e.run();
}

}  // namespace

/// The per-algorithm sweep — the body of run_oracle, split out so dsan
/// mode can wrap it in an attached sanitizer scope.
static void run_sweep(const ScenarioSpec& s, OracleReport& report) {
  const sched::AlgorithmKind* kinds = sched::every_algorithm();

  for (int i = 0; i < sched::kNumEveryAlgorithm; ++i) {
    const sched::AlgorithmKind kind = kinds[i];
    rt::Runtime runtime(s.machine);
    auto c = kern::make_case(s.kernel, s.n, true);
    const auto maps = c->maps();
    const auto kernel = c->kernel();

    if (kind == sched::AlgorithmKind::kHistoryAuto) {
      // HISTORY_AUTO partitions by throughput observed in *previous*
      // offloads; prime its history with one dynamic run, then reset the
      // arrays so the measured run starts from the same state as every
      // other family.
      c->init();
      try {
        (void)runtime.offload(
            kernel, maps,
            options_for(s, sched::AlgorithmKind::kDynamic, runtime));
      } catch (const std::exception&) {
        // A priming failure surfaces through the dynamic family's own
        // run; HISTORY_AUTO then simply runs history-less.
      }
    }

    c->init();
    AlgorithmRun run;
    run.algorithm = sched::to_string(kind);
    Checker checker{s, report.violations, run.algorithm};
    try {
      const auto res = runtime.offload(kernel, maps,
                                       options_for(s, kind, runtime));
      run.completed = true;
      run.iterations = res.total_iterations();
      run.chunks_issued = res.chunks_issued;
      run.engine_events = res.engine_events;
      run.result_checksum = res.result_checksum;
      run.result_checksum_valid = res.result_checksum_valid;
      run.reduction = res.reduction;
      run.total_time = res.total_time;
      run.degraded = res.degraded;
      checker.check_run(res, kernel, *c);
    } catch (const std::exception& e) {
      checker.fail("progress", e.what());
    }
    report.runs.push_back(std::move(run));
  }
}

OracleReport run_oracle(const ScenarioSpec& s) {
  OracleReport report;

  if (s.dsan && sim::dsan::compiled_in()) {
    // Attach the determinism sanitizer for the whole sweep. Sequential
    // engines are fine under one context (it flushes on engine change);
    // every surviving conflict becomes a "dsan-determinism" violation.
    sim::dsan::Context ctx;
    {
      sim::dsan::Scope scope(ctx);
      if (s.plant_dsan_conflict) run_planted_dsan_conflict();
      run_sweep(s, report);
    }
    ctx.finish();
    for (const auto& v : ctx.violations()) {
      report.violations.push_back({"dsan-determinism", "*", v.to_string()});
    }
  } else {
    run_sweep(s, report);
  }

  // --- differential invariants across the sweep ---
  const AlgorithmRun* ref = nullptr;
  for (const auto& r : report.runs) {
    if (!r.completed) continue;
    if (ref == nullptr) {
      ref = &r;
      continue;
    }
    if (r.result_checksum_valid && ref->result_checksum_valid &&
        r.result_checksum != ref->result_checksum) {
      std::ostringstream os;
      os << ref->algorithm << " and " << r.algorithm
         << " disagree on output buffers (0x" << std::hex
         << ref->result_checksum << " vs 0x" << r.result_checksum << ")";
      report.violations.push_back({"differential-results", "*", os.str()});
    }
    // Reductions are compared under tolerance: partial-sum grouping
    // differs across chunkings, so bit-exactness is not expected.
    const double a = ref->reduction;
    const double b = r.reduction;
    const double tol = 1e-9 + 1e-6 * std::max(std::fabs(a), std::fabs(b));
    if (std::fabs(a - b) > tol) {
      report.violations.push_back(
          {"differential-results", "*",
           ref->algorithm + " and " + r.algorithm +
               " disagree on the reduction (" + std::to_string(a) + " vs " +
               std::to_string(b) + ")"});
    }
  }
  return report;
}

}  // namespace homp::fuzz
