#ifndef HOMP_FUZZ_ORACLE_H
#define HOMP_FUZZ_ORACLE_H

/// \file oracle.h
/// Differential invariant oracle of the homp-fuzz harness
/// (docs/FUZZING.md).
///
/// One oracle run takes one scenario through *every* algorithm family —
/// the paper's seven plus the three extensions, in every_algorithm()
/// order — each on a fresh Runtime so ThroughputHistory cannot leak
/// between families (HISTORY_AUTO gets its own deliberate priming
/// offload). After each offload the oracle checks the per-run invariants;
/// after the sweep it checks the cross-algorithm (differential) ones.
///
/// Invariant catalog (names appear in reports, repro files and
/// docs/FUZZING.md):
///   progress            offload completes; a step-budget abort or any
///                       unexpected exception is a livelock/deadlock
///   conservation        committed iterations == the loop's trip count
///   reference           results match the kernel's sequential reference
///   differential-results all algorithms produce bit-identical output
///                       buffers (checksums) and tolerance-equal
///                       reductions
///   recovery-legality   quarantine/probation/speculation/vote events
///                       follow the legal state machine
///   audit-consistency   the decision audit trail is self-consistent
///                       (in-domain ranges, monotone time, assignments
///                       present whenever chunks were issued)
///   metrics-consistency the exported metrics registry agrees with the
///                       OffloadResult it was built from
///   imbalance-bounds    imbalance / finish times / total time are
///                       finite, ordered and within [0, 1]

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/scenario.h"
#include "runtime/options.h"

namespace homp::fuzz {

/// One invariant violation observed for one scenario.
struct Violation {
  std::string invariant;  ///< catalog name (see file comment)
  std::string algorithm;  ///< sched notation, or "*" for differential
  std::string detail;     ///< human-readable specifics
};

/// Per-algorithm telemetry folded into the deterministic run digest.
struct AlgorithmRun {
  std::string algorithm;
  bool completed = false;
  long long iterations = 0;
  std::size_t chunks_issued = 0;
  std::size_t engine_events = 0;
  std::uint64_t result_checksum = 0;
  bool result_checksum_valid = false;
  double reduction = 0.0;
  double total_time = 0.0;
  bool degraded = false;
};

struct OracleReport {
  std::vector<AlgorithmRun> runs;
  std::vector<Violation> violations;

  bool ok() const noexcept { return violations.empty(); }

  /// Order-sensitive 64-bit digest over every run's result-relevant
  /// fields — two byte-identical harness executions must agree here,
  /// which is what the determinism acceptance test pins.
  std::uint64_t digest() const noexcept;
};

/// The ten invariant names in report order.
const std::vector<std::string>& invariant_names();

/// Run `s` through all algorithm families and check every invariant.
/// Never throws for scenario-induced failures — those become violations;
/// only genuine misuse (unknown kernel name etc.) propagates ConfigError.
OracleReport run_oracle(const ScenarioSpec& s);

}  // namespace homp::fuzz

#endif  // HOMP_FUZZ_ORACLE_H
