#ifndef HOMP_DIST_POLICY_H
#define HOMP_DIST_POLICY_H

/// \file policy.h
/// Distribution policies from the paper's Table I, applicable uniformly to
/// array dimensions and loop iteration spaces:
///
///   FULL               whole range on every device (default)
///   BLOCK              contiguous even blocks
///   ALIGN(dist,ratio)  copy another distribution's ranges, scaled by ratio
///   AUTO               runtime-decided (loop distribution only)
///   CYCLIC(b)          block-cyclic (our extension; paper lists it as the
///                      natural next policy but evaluates only the above)

#include <string>

namespace homp::dist {

enum class PolicyKind { kFull, kBlock, kAlign, kAuto, kCyclic };

const char* to_string(PolicyKind k) noexcept;

/// Policy for one dimension of an array or one loop in a nest.
struct DimPolicy {
  PolicyKind kind = PolicyKind::kFull;

  /// For kAlign: the name of the distribution to align with (an array name
  /// or a loop label, e.g. ALIGN(loop1)).
  std::string align_target;

  /// For kAlign: index scaling factor (Table I, default 1).
  double align_ratio = 1.0;

  /// For kCyclic: block size.
  long long cyclic_block = 1;

  static DimPolicy full() { return {}; }
  static DimPolicy block() { return {PolicyKind::kBlock, {}, 1.0, 1}; }
  static DimPolicy auto_() { return {PolicyKind::kAuto, {}, 1.0, 1}; }
  static DimPolicy align(std::string target, double ratio = 1.0) {
    return {PolicyKind::kAlign, std::move(target), ratio, 1};
  }
  static DimPolicy cyclic(long long block) {
    return {PolicyKind::kCyclic, {}, 1.0, block};
  }

  bool operator==(const DimPolicy& o) const noexcept = default;

  /// Renders in pragma syntax: "BLOCK", "ALIGN(loop1, 2)", "CYCLIC(4)".
  std::string to_string() const;
};

/// Parse one policy token in pragma syntax (case-insensitive keyword).
/// Accepts: FULL | BLOCK | AUTO | ALIGN(name[,ratio]) | CYCLIC(block).
/// Throws ParseError on malformed input (offset is relative to `s`).
DimPolicy parse_dim_policy(const std::string& s);

}  // namespace homp::dist

#endif  // HOMP_DIST_POLICY_H
