#include "dist/distribution.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace homp::dist {

Distribution::Distribution(Range domain, std::vector<Range> parts)
    : domain_(domain), parts_(std::move(parts)) {
  for (const Range& p : parts_) {
    HOMP_REQUIRE(domain_.contains(p),
                 "distribution part " + p.to_string() +
                     " outside domain " + domain_.to_string());
  }
}

Distribution Distribution::full(Range domain, std::size_t n_parts) {
  return Distribution(domain, std::vector<Range>(n_parts, domain));
}

Distribution Distribution::block(Range domain, std::size_t n_parts) {
  HOMP_REQUIRE(n_parts > 0, "BLOCK distribution needs at least one part");
  const long long n = domain.size();
  const long long base = n / static_cast<long long>(n_parts);
  const long long remnant = n % static_cast<long long>(n_parts);
  std::vector<Range> parts;
  parts.reserve(n_parts);
  long long cursor = domain.lo;
  for (std::size_t i = 0; i < n_parts; ++i) {
    const long long size =
        base + (static_cast<long long>(i) < remnant ? 1 : 0);
    parts.emplace_back(cursor, cursor + size);
    cursor += size;
  }
  HOMP_ASSERT(cursor == domain.hi || domain.empty());
  return Distribution(domain, std::move(parts));
}

Distribution Distribution::by_weights(Range domain,
                                      const std::vector<double>& w) {
  HOMP_REQUIRE(!w.empty(), "by_weights needs at least one weight");
  double total = 0.0;
  for (double x : w) {
    HOMP_REQUIRE(x >= 0.0 && std::isfinite(x),
                 "weights must be finite and non-negative");
    total += x;
  }
  HOMP_REQUIRE(total > 0.0, "weights must not all be zero");

  const long long n = domain.size();
  std::vector<long long> sizes(w.size());
  std::vector<std::pair<double, std::size_t>> remainders;
  remainders.reserve(w.size());
  long long assigned = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double exact = static_cast<double>(n) * w[i] / total;
    sizes[i] = static_cast<long long>(std::floor(exact));
    assigned += sizes[i];
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  // Largest-remainder rounding; ties broken toward lower index for
  // determinism.
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  for (long long left = n - assigned; left > 0; --left) {
    sizes[remainders[static_cast<std::size_t>(n - assigned - left)].second]++;
  }
  return by_counts(domain, sizes);
}

Distribution Distribution::by_counts(Range domain,
                                     const std::vector<long long>& counts) {
  long long total = 0;
  for (long long c : counts) {
    HOMP_REQUIRE(c >= 0, "part sizes must be non-negative");
    total += c;
  }
  HOMP_REQUIRE(total == domain.size(),
               "part sizes sum to " + std::to_string(total) +
                   " but domain has " + std::to_string(domain.size()));
  std::vector<Range> parts;
  parts.reserve(counts.size());
  long long cursor = domain.lo;
  for (long long c : counts) {
    parts.emplace_back(cursor, cursor + c);
    cursor += c;
  }
  return Distribution(domain, std::move(parts));
}

const Range& Distribution::part(std::size_t i) const {
  HOMP_ASSERT(i < parts_.size());
  return parts_[i];
}

Distribution Distribution::aligned(double ratio) const {
  HOMP_REQUIRE(ratio > 0.0, "ALIGN ratio must be positive");
  Distribution out;
  out.domain_ = domain_.scaled(ratio);
  out.parts_.reserve(parts_.size());
  for (const Range& p : parts_) out.parts_.push_back(p.scaled(ratio));
  return out;
}

Distribution Distribution::widened(long long before, long long after) const {
  HOMP_REQUIRE(before >= 0 && after >= 0, "halo widths must be non-negative");
  Distribution out;
  out.domain_ = domain_;
  out.parts_.reserve(parts_.size());
  for (const Range& p : parts_) {
    out.parts_.push_back(p.empty() ? p
                                   : p.widened(before, after).clamped_to(
                                         domain_));
  }
  return out;
}

bool Distribution::is_partition() const {
  return exactly_covers(domain_, parts_);
}

bool Distribution::is_replication() const {
  if (parts_.empty()) return false;
  return std::all_of(parts_.begin(), parts_.end(),
                     [&](const Range& p) { return p == domain_; });
}

std::string Distribution::to_string() const {
  std::string s = domain_.to_string() + " -> {";
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i) s += ", ";
    s += parts_[i].to_string();
  }
  return s + "}";
}

}  // namespace homp::dist
