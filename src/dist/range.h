#ifndef HOMP_DIST_RANGE_H
#define HOMP_DIST_RANGE_H

/// \file range.h
/// Half-open index ranges and N-dimensional regions.
///
/// The key observation in the paper (§III-3) is that a loop iteration space
/// and an array dimension are both just index ranges, so one set of
/// distribution policies serves both. Range is that common currency.

#include <cstddef>
#include <string>
#include <vector>

namespace homp::dist {

/// Half-open interval [lo, hi) of loop iterations or array indices.
struct Range {
  long long lo = 0;
  long long hi = 0;

  Range() = default;
  Range(long long lo_, long long hi_) : lo(lo_), hi(hi_) {}

  static Range of_size(long long n) { return Range(0, n); }

  long long size() const noexcept { return hi > lo ? hi - lo : 0; }
  bool empty() const noexcept { return hi <= lo; }
  bool contains(long long i) const noexcept { return i >= lo && i < hi; }
  bool contains(const Range& r) const noexcept {
    return r.empty() || (r.lo >= lo && r.hi <= hi);
  }

  Range intersect(const Range& o) const noexcept {
    Range r(lo > o.lo ? lo : o.lo, hi < o.hi ? hi : o.hi);
    if (r.hi < r.lo) r.hi = r.lo;
    return r;
  }

  /// Clamp this range into `bounds`.
  Range clamped_to(const Range& bounds) const noexcept {
    return intersect(bounds);
  }

  /// Widen by `before` on the low side and `after` on the high side
  /// (halo expansion); does not clamp.
  Range widened(long long before, long long after) const noexcept {
    return Range(lo - before, hi + after);
  }

  /// Scale both endpoints by `ratio` (ALIGN(dist, ratio) semantics).
  /// Endpoints are rounded to nearest to keep adjacent scaled ranges
  /// exactly abutting for integral ratios.
  Range scaled(double ratio) const noexcept;

  bool operator==(const Range& o) const noexcept = default;

  std::string to_string() const;
};

/// True if `parts` exactly tile `domain`: disjoint, in order or not,
/// union equal to domain. Empty parts are permitted.
bool exactly_covers(const Range& domain, const std::vector<Range>& parts);

/// N-dimensional region: one Range per dimension (row-major semantics; the
/// first dimension is the slowest varying, matching C arrays in the paper's
/// examples like u[0:n][0:m]).
class Region {
 public:
  Region() = default;
  explicit Region(std::vector<Range> dims) : dims_(std::move(dims)) {}
  Region(std::initializer_list<Range> dims) : dims_(dims) {}

  static Region of_shape(const std::vector<long long>& extents);

  std::size_t rank() const noexcept { return dims_.size(); }
  const Range& dim(std::size_t i) const;
  Range& dim(std::size_t i);
  const std::vector<Range>& dims() const noexcept { return dims_; }

  /// Number of index tuples in the region.
  long long volume() const noexcept;
  bool empty() const noexcept { return volume() == 0; }

  Region intersect(const Region& o) const;
  bool contains(const Region& o) const;

  /// Replace dimension `i` with `r`, returning a new region.
  Region with_dim(std::size_t i, const Range& r) const;

  bool operator==(const Region& o) const noexcept = default;

  std::string to_string() const;

 private:
  std::vector<Range> dims_;
};

}  // namespace homp::dist

#endif  // HOMP_DIST_RANGE_H
