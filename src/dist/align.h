#ifndef HOMP_DIST_ALIGN_H
#define HOMP_DIST_ALIGN_H

/// \file align.h
/// Alignment graph between named distributions.
///
/// The ALIGN policy binds an array dimension (or a loop) to another
/// distribution by name: `partition([ALIGN(loop1)])`, `dist_schedule(
/// target:[ALIGN(x)])`. Multiple ALIGNs may chain (x aligns to loop, loop
/// aligns to y); the paper's runtime "re-links those distributions so each
/// aligner points to the root alignee's distribution" (§V-D). This class
/// implements that resolution, composing ratios along the chain and
/// rejecting cycles and dangling targets.

#include <map>
#include <string>
#include <vector>

#include "dist/distribution.h"

namespace homp::dist {

class AlignmentGraph {
 public:
  /// Register a concretely computed distribution under `name` (e.g. the
  /// BLOCK decomposition of array x, or the scheduler's loop partition).
  /// Re-registering a name overwrites it (an offload region may rebind a
  /// loop label on every encounter).
  void set_concrete(const std::string& name, Distribution dist);

  /// Register `name` as ALIGN(target, ratio).
  void set_aligned(const std::string& name, const std::string& target,
                   double ratio = 1.0);

  bool contains(const std::string& name) const;

  /// Resolve `name` to a concrete distribution, following ALIGN edges to
  /// the root and composing ratios. Throws ConfigError on unknown names,
  /// dangling targets, or alignment cycles.
  Distribution resolve(const std::string& name) const;

  /// The root alignee's name (a concrete node); `name` itself if concrete.
  std::string root_of(const std::string& name) const;

  /// Composite ratio from `name` to its root (product along the chain).
  double ratio_to_root(const std::string& name) const;

  /// All registered names, sorted (diagnostics).
  std::vector<std::string> names() const;

 private:
  struct Node {
    bool concrete = false;
    Distribution dist;     // valid when concrete
    std::string target;    // valid when !concrete
    double ratio = 1.0;    // valid when !concrete
  };

  const Node& walk_to_root(const std::string& name, double* ratio_out) const;

  std::map<std::string, Node> nodes_;
};

}  // namespace homp::dist

#endif  // HOMP_DIST_ALIGN_H
