#include "dist/align.h"

#include <set>

#include "common/error.h"

namespace homp::dist {

void AlignmentGraph::set_concrete(const std::string& name,
                                  Distribution dist) {
  Node n;
  n.concrete = true;
  n.dist = std::move(dist);
  nodes_[name] = std::move(n);
}

void AlignmentGraph::set_aligned(const std::string& name,
                                 const std::string& target, double ratio) {
  HOMP_REQUIRE(ratio > 0.0, "ALIGN ratio must be positive");
  HOMP_REQUIRE(name != target, "distribution '" + name +
                                   "' cannot align with itself");
  Node n;
  n.concrete = false;
  n.target = target;
  n.ratio = ratio;
  nodes_[name] = std::move(n);
}

bool AlignmentGraph::contains(const std::string& name) const {
  return nodes_.count(name) != 0;
}

const AlignmentGraph::Node& AlignmentGraph::walk_to_root(
    const std::string& name, double* ratio_out) const {
  std::set<std::string> visited;
  const std::string* cur = &name;
  double ratio = 1.0;
  for (;;) {
    auto it = nodes_.find(*cur);
    HOMP_REQUIRE(it != nodes_.end(),
                 "ALIGN target '" + *cur + "' is not a known distribution");
    const Node& node = it->second;
    if (node.concrete) {
      if (ratio_out) *ratio_out = ratio;
      return node;
    }
    HOMP_REQUIRE(visited.insert(*cur).second,
                 "alignment cycle involving '" + *cur + "'");
    ratio *= node.ratio;
    cur = &node.target;
  }
}

Distribution AlignmentGraph::resolve(const std::string& name) const {
  double ratio = 1.0;
  const Node& root = walk_to_root(name, &ratio);
  return ratio == 1.0 ? root.dist : root.dist.aligned(ratio);
}

std::string AlignmentGraph::root_of(const std::string& name) const {
  std::set<std::string> visited;
  std::string cur = name;
  for (;;) {
    auto it = nodes_.find(cur);
    HOMP_REQUIRE(it != nodes_.end(),
                 "ALIGN target '" + cur + "' is not a known distribution");
    if (it->second.concrete) return cur;
    HOMP_REQUIRE(visited.insert(cur).second,
                 "alignment cycle involving '" + cur + "'");
    cur = it->second.target;
  }
}

double AlignmentGraph::ratio_to_root(const std::string& name) const {
  double ratio = 1.0;
  walk_to_root(name, &ratio);
  return ratio;
}

std::vector<std::string> AlignmentGraph::names() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [k, v] : nodes_) out.push_back(k);
  return out;
}

}  // namespace homp::dist
