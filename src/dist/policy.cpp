#include "dist/policy.h"

#include <cstdio>

#include "common/error.h"
#include "common/strings.h"

namespace homp::dist {

const char* to_string(PolicyKind k) noexcept {
  switch (k) {
    case PolicyKind::kFull:
      return "FULL";
    case PolicyKind::kBlock:
      return "BLOCK";
    case PolicyKind::kAlign:
      return "ALIGN";
    case PolicyKind::kAuto:
      return "AUTO";
    case PolicyKind::kCyclic:
      return "CYCLIC";
  }
  return "?";
}

std::string DimPolicy::to_string() const {
  switch (kind) {
    case PolicyKind::kAlign: {
      if (align_ratio == 1.0) return "ALIGN(" + align_target + ")";
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g", align_ratio);
      return "ALIGN(" + align_target + ", " + buf + ")";
    }
    case PolicyKind::kCyclic:
      return "CYCLIC(" + std::to_string(cyclic_block) + ")";
    default:
      return dist::to_string(kind);
  }
}

DimPolicy parse_dim_policy(const std::string& raw) {
  const std::string s(trim(raw));
  if (iequals(s, "FULL")) return DimPolicy::full();
  if (iequals(s, "BLOCK")) return DimPolicy::block();
  if (iequals(s, "AUTO")) return DimPolicy::auto_();

  auto parse_call = [&](std::string_view keyword)
      -> std::vector<std::string> {
    // Expects "<keyword> ( args )"; returns top-level comma-split args.
    std::string_view v(s);
    HOMP_ASSERT(v.size() >= keyword.size());
    v.remove_prefix(keyword.size());
    v = trim(v);
    if (v.empty() || v.front() != '(' || v.back() != ')') {
      throw ParseError("expected '(' after " + std::string(keyword) +
                           " in policy '" + s + "'",
                       keyword.size());
    }
    return split_top_level(v.substr(1, v.size() - 2), ',');
  };

  if (s.size() >= 5 && iequals(s.substr(0, 5), "ALIGN")) {
    auto args = parse_call("ALIGN");
    if (args.empty() || args[0].empty() ||
        (args.size() == 2 && args[1].empty()) || args.size() > 2) {
      throw ParseError("ALIGN takes (target[, ratio]) in '" + s + "'", 0);
    }
    double ratio = 1.0;
    if (args.size() == 2) {
      try {
        std::size_t pos = 0;
        ratio = std::stod(args[1], &pos);
        if (pos != args[1].size()) throw std::invalid_argument("trailing");
      } catch (const std::exception&) {
        throw ParseError("ALIGN ratio is not a number: '" + args[1] + "'", 0);
      }
      if (ratio <= 0.0) {
        throw ParseError("ALIGN ratio must be positive in '" + s + "'", 0);
      }
    }
    return DimPolicy::align(args[0], ratio);
  }

  if (s.size() >= 6 && iequals(s.substr(0, 6), "CYCLIC")) {
    auto args = parse_call("CYCLIC");
    if (args.size() != 1 || args[0].empty()) {
      throw ParseError("CYCLIC takes (block_size) in '" + s + "'", 0);
    }
    const long long block = parse_scaled_int(args[0]);
    if (block <= 0) {
      throw ParseError("CYCLIC block size must be positive in '" + s + "'", 0);
    }
    return DimPolicy::cyclic(block);
  }

  throw ParseError("unknown distribution policy: '" + s + "'", 0);
}

}  // namespace homp::dist
