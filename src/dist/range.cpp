#include "dist/range.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace homp::dist {

Range Range::scaled(double ratio) const noexcept {
  return Range(static_cast<long long>(std::llround(lo * ratio)),
               static_cast<long long>(std::llround(hi * ratio)));
}

std::string Range::to_string() const {
  std::string s;
  s.reserve(32);
  s += '[';
  s += std::to_string(lo);
  s += ':';
  s += std::to_string(hi);
  s += ')';
  return s;
}

bool exactly_covers(const Range& domain, const std::vector<Range>& parts) {
  std::vector<Range> sorted;
  sorted.reserve(parts.size());
  for (const Range& p : parts) {
    if (!p.empty()) sorted.push_back(p);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Range& a, const Range& b) { return a.lo < b.lo; });
  long long cursor = domain.lo;
  for (const Range& p : sorted) {
    if (p.lo != cursor) return false;
    cursor = p.hi;
  }
  return cursor == domain.hi || (domain.empty() && sorted.empty());
}

Region Region::of_shape(const std::vector<long long>& extents) {
  std::vector<Range> dims;
  dims.reserve(extents.size());
  for (long long e : extents) {
    HOMP_REQUIRE(e >= 0, "negative region extent");
    dims.push_back(Range::of_size(e));
  }
  return Region(std::move(dims));
}

const Range& Region::dim(std::size_t i) const {
  HOMP_ASSERT(i < dims_.size());
  return dims_[i];
}

Range& Region::dim(std::size_t i) {
  HOMP_ASSERT(i < dims_.size());
  return dims_[i];
}

long long Region::volume() const noexcept {
  if (dims_.empty()) return 0;
  long long v = 1;
  for (const Range& r : dims_) v *= r.size();
  return v;
}

Region Region::intersect(const Region& o) const {
  HOMP_REQUIRE(rank() == o.rank(), "region rank mismatch in intersect");
  std::vector<Range> dims;
  dims.reserve(rank());
  for (std::size_t i = 0; i < rank(); ++i) {
    dims.push_back(dims_[i].intersect(o.dims_[i]));
  }
  return Region(std::move(dims));
}

bool Region::contains(const Region& o) const {
  HOMP_REQUIRE(rank() == o.rank(), "region rank mismatch in contains");
  if (o.empty()) return true;
  for (std::size_t i = 0; i < rank(); ++i) {
    if (!dims_[i].contains(o.dims_[i])) return false;
  }
  return true;
}

Region Region::with_dim(std::size_t i, const Range& r) const {
  HOMP_ASSERT(i < dims_.size());
  Region out = *this;
  out.dims_[i] = r;
  return out;
}

std::string Region::to_string() const {
  std::string s;
  for (const Range& r : dims_) s += r.to_string();
  return s;
}

}  // namespace homp::dist
