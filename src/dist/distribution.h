#ifndef HOMP_DIST_DISTRIBUTION_H
#define HOMP_DIST_DISTRIBUTION_H

/// \file distribution.h
/// A Distribution is the result of applying a policy to one index range:
/// an assignment of one contiguous subrange per participating device.
///
/// Multi-chunk assignments (dynamic/guided chunking, CYCLIC) are not
/// Distributions; they are realized by the scheduler as a sequence of
/// chunk offloads. A Distribution describes the single-shot partition used
/// by BLOCK / ALIGN / model-based AUTO and by array decomposition.

#include <cstddef>
#include <string>
#include <vector>

#include "dist/range.h"

namespace homp::dist {

class Distribution {
 public:
  Distribution() = default;

  /// `parts[i]` is the subrange owned by participant i. Parts may be empty
  /// (a device receiving no work) but must lie within `domain`.
  Distribution(Range domain, std::vector<Range> parts);

  /// FULL: every participant sees the whole domain (replication).
  static Distribution full(Range domain, std::size_t n_parts);

  /// BLOCK: contiguous even blocks; the first (domain.size() % n) parts get
  /// one extra element, matching the axpy_omp_mdev remnant logic in Fig. 1.
  static Distribution block(Range domain, std::size_t n_parts);

  /// Contiguous parts proportional to non-negative weights (largest
  /// remainder rounding; deterministic, exact cover). Used by the
  /// model-based and profile-based AUTO schedulers.
  static Distribution by_weights(Range domain, const std::vector<double>& w);

  /// Contiguous parts with explicit sizes; sizes must sum to domain size.
  static Distribution by_counts(Range domain,
                                const std::vector<long long>& counts);

  const Range& domain() const noexcept { return domain_; }
  std::size_t num_parts() const noexcept { return parts_.size(); }
  const Range& part(std::size_t i) const;
  const std::vector<Range>& parts() const noexcept { return parts_; }

  /// ALIGN(this, ratio): a new distribution whose parts (and domain) are
  /// this one's scaled by `ratio`.
  Distribution aligned(double ratio = 1.0) const;

  /// Halo expansion: widen each part by (before, after), clamped to the
  /// domain. The result replicates boundary elements across neighbours —
  /// by construction no longer a partition.
  Distribution widened(long long before, long long after) const;

  /// True if the non-empty parts exactly tile the domain.
  bool is_partition() const;

  /// True if every part equals the whole domain (FULL).
  bool is_replication() const;

  bool operator==(const Distribution& o) const noexcept = default;

  std::string to_string() const;

 private:
  Range domain_;
  std::vector<Range> parts_;
};

}  // namespace homp::dist

#endif  // HOMP_DIST_DISTRIBUTION_H
