#ifndef HOMP_MODEL_COST_H
#define HOMP_MODEL_COST_H

/// \file cost.h
/// Elementary cost models: Hockney alpha-beta transfers and roofline
/// execution time. Used both by the runtime's predictors (with *peak*
/// device numbers) and by the simulator's ground truth (with *sustained*
/// numbers) — see machine/device.h for why the two are kept distinct.

namespace homp::model {

/// Hockney alpha-beta transfer time: alpha + bytes / beta.
/// This is the DataT_dev model of §IV-B2 ([11] in the paper).
inline double hockney_time(double bytes, double latency_s,
                           double bytes_per_s) {
  return latency_s + bytes / bytes_per_s;
}

/// Roofline execution-time estimate for a chunk.
///
/// The paper computes ExeT as FLOPs / (Perf * MemComp), which is
/// dimensionally inconsistent; we use the roofline form the paper itself
/// cites ([30]): time is bound by whichever of compute and memory traffic
/// is slower. DESIGN.md §7 records the substitution.
struct ComputeEstimate {
  double seconds = 0.0;
  bool memory_bound = false;
};

inline ComputeEstimate roofline_time(double flops, double mem_bytes,
                                     double flops_per_s,
                                     double mem_bytes_per_s) {
  const double t_compute = flops / flops_per_s;
  const double t_memory = mem_bytes / mem_bytes_per_s;
  if (t_memory > t_compute) return {t_memory, true};
  return {t_compute, false};
}

/// Extra kernel-time factor applied when a discrete-memory device accesses
/// mapped data through unified (on-demand paged) memory instead of bulk
/// copies. Bulk DMA streams at link bandwidth; page-fault-driven migration
/// pays per-page latency and loses pipelining. The factor is calibrated so
/// the data-bound BLAS kernels show the ~10-18x slowdown the paper
/// observed (§V-C); it is applied against the *uncontended* link rate, so
/// the effective penalty relative to (contended) explicit copies on a
/// shared K80 lane is about half the raw factor.
inline constexpr double kUnifiedMemoryFaultFactor = 25.0;

}  // namespace homp::model

#endif  // HOMP_MODEL_COST_H
