#ifndef HOMP_MODEL_HEURISTIC_H
#define HOMP_MODEL_HEURISTIC_H

/// \file heuristic.h
/// Kernel classification by computational intensity (§IV-D).
///
/// The paper's heuristic for picking a loop-distribution algorithm keys on
/// roofline-style intensity "to capture the computation and data movement
/// behavior of an application". We classify on DataComp (transferred
/// elements per FLOP, Table IV):
///
///   DataComp >= 0.9   data-intensive       (axpy 1.5, sum 1.0)
///   0.07 <= DataComp  balanced             (mv ~0.5, stencil ~0.077)
///   DataComp < 0.07   compute-intensive    (mm 1.5/N, bm 0.06)
///
/// The thresholds sit between the Table IV clusters; §VI-D's summary maps
/// each class to an algorithm (see sched/selector.h).

#include "model/kernel_profile.h"

namespace homp::model {

enum class KernelClass { kComputeIntensive, kBalanced, kDataIntensive };

const char* to_string(KernelClass c) noexcept;

KernelClass classify(const KernelCostProfile& k) noexcept;

}  // namespace homp::model

#endif  // HOMP_MODEL_HEURISTIC_H
