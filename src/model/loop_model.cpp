#include "model/loop_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "model/cost.h"

namespace homp::model {

std::vector<DevicePredictionInput> prediction_inputs(
    const mach::MachineDescriptor& machine, const std::vector<int>& devices) {
  std::vector<DevicePredictionInput> out;
  out.reserve(devices.size());
  for (int id : devices) {
    HOMP_REQUIRE(id >= 0 &&
                     static_cast<std::size_t>(id) < machine.devices.size(),
                 "device id " + std::to_string(id) + " out of range");
    const auto& d = machine.devices[static_cast<std::size_t>(id)];
    DevicePredictionInput in;
    in.peak_flops = d.peak_flops();
    in.peak_membw_Bps = d.peak_membw_Bps();
    in.launch_overhead_s = d.launch_overhead_s;
    if (d.link != mach::kNoLink && d.memory == mach::MemorySpace::kDiscrete) {
      const auto& l = machine.links[static_cast<std::size_t>(d.link)];
      in.has_link = true;
      in.link_latency_s = l.latency_s;
      in.link_bandwidth_Bps = l.bandwidth_Bps;
    }
    out.push_back(in);
  }
  return out;
}

double model1_iter_time(const KernelCostProfile& k,
                        const DevicePredictionInput& d) {
  HOMP_REQUIRE(d.peak_flops > 0.0, "device has no peak performance");
  // "Considering only computation capability": rate proportional to Perf.
  // Guard kernels with no FLOPs (pure data movement) with a nominal one
  // operation per iteration so the weights stay proportional to Perf.
  const double flops = std::max(k.flops_per_iter, 1.0);
  return flops / d.peak_flops;
}

double model2_iter_time(const KernelCostProfile& k,
                        const DevicePredictionInput& d) {
  const double exec =
      roofline_time(std::max(k.flops_per_iter, 1.0), k.mem_bytes_per_iter,
                    d.peak_flops, d.peak_membw_Bps)
          .seconds;
  double data = 0.0;
  if (d.has_link) {
    // Per-iteration share of the bulk transfer; the alpha term is a
    // per-offload constant and is accounted in launch costs, not here.
    data = k.transfer_bytes_per_iter / d.link_bandwidth_Bps;
  }
  return exec + data;
}

std::vector<double> weights_from_rates(const std::vector<double>& rates) {
  HOMP_REQUIRE(!rates.empty(), "no devices to weight");
  double total = 0.0;
  for (double r : rates) {
    HOMP_REQUIRE(r >= 0.0 && std::isfinite(r),
                 "rates must be finite and non-negative");
    total += r;
  }
  HOMP_REQUIRE(total > 0.0, "all device rates are zero");
  std::vector<double> w(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) w[i] = rates[i] / total;
  return w;
}

namespace {
std::vector<double> weights_from_iter_times(
    const KernelCostProfile& k,
    const std::vector<DevicePredictionInput>& devices,
    double (*iter_time)(const KernelCostProfile&,
                        const DevicePredictionInput&)) {
  std::vector<double> rates;
  rates.reserve(devices.size());
  for (const auto& d : devices) rates.push_back(1.0 / iter_time(k, d));
  return weights_from_rates(rates);
}
}  // namespace

std::vector<double> model1_weights(
    const KernelCostProfile& k,
    const std::vector<DevicePredictionInput>& devices) {
  return weights_from_iter_times(k, devices, model1_iter_time);
}

std::vector<double> model2_weights(
    const KernelCostProfile& k,
    const std::vector<DevicePredictionInput>& devices) {
  return weights_from_iter_times(k, devices, model2_iter_time);
}

double predicted_completion_time(long long n_iters,
                                 const std::vector<double>& weights,
                                 const std::vector<double>& iter_times) {
  HOMP_REQUIRE(weights.size() == iter_times.size(),
               "weights/iter_times size mismatch");
  double t0 = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    t0 = std::max(t0, static_cast<double>(n_iters) * weights[i] *
                          iter_times[i]);
  }
  return t0;
}

CutoffResult apply_cutoff(const std::vector<double>& weights,
                          double cutoff_ratio) {
  HOMP_REQUIRE(!weights.empty(), "no devices for cutoff selection");
  HOMP_REQUIRE(cutoff_ratio >= 0.0 && cutoff_ratio < 1.0,
               "cutoff ratio must be in [0, 1)");
  CutoffResult res;
  res.selected.assign(weights.size(), true);
  res.weights = weights;
  res.pre_weights = weights;
  double pre_total = 0.0;
  for (double w : weights) pre_total += w;
  if (pre_total > 0.0) {
    for (double& w : res.pre_weights) w /= pre_total;
  }

  auto renormalize = [&res] {
    double total = 0.0;
    for (std::size_t i = 0; i < res.weights.size(); ++i) {
      if (res.selected[i]) total += res.weights[i];
    }
    HOMP_ASSERT(total > 0.0);
    for (std::size_t i = 0; i < res.weights.size(); ++i) {
      res.weights[i] = res.selected[i] ? res.weights[i] / total : 0.0;
    }
  };
  renormalize();

  for (;;) {
    // Find the smallest selected contribution; tie -> higher index.
    int victim = -1;
    double smallest = 2.0;
    int remaining = 0;
    for (std::size_t i = 0; i < res.weights.size(); ++i) {
      if (!res.selected[i]) continue;
      ++remaining;
      if (res.weights[i] <= smallest) {
        smallest = res.weights[i];
        victim = static_cast<int>(i);
      }
    }
    if (remaining <= 1 || smallest >= cutoff_ratio) {
      res.num_selected = remaining;
      return res;
    }
    res.selected[static_cast<std::size_t>(victim)] = false;
    renormalize();
  }
}

}  // namespace homp::model
