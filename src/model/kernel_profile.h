#ifndef HOMP_MODEL_KERNEL_PROFILE_H
#define HOMP_MODEL_KERNEL_PROFILE_H

/// \file kernel_profile.h
/// Static cost characteristics of an offloadable loop, the inputs the
/// paper's analytical models need (Table III / Table IV).
///
/// In the paper these come from "compiler analysis or direct user input";
/// here each kernel in src/kernels declares them. All quantities are *per
/// loop iteration* of the distributed (outermost) loop, so chunk costs are
/// iterations x per-iteration cost. That matches the models' assumption
/// that "each loop iteration has approximately the same amount of work".

#include <string>

namespace homp::model {

struct KernelCostProfile {
  /// Floating-point operations per iteration of the distributed loop.
  double flops_per_iter = 0.0;

  /// Device-memory traffic per iteration (loads + stores), in bytes.
  double mem_bytes_per_iter = 0.0;

  /// Interconnect traffic per iteration under an aligned BLOCK
  /// distribution (copy-in + copy-out of the iteration's data slice), in
  /// bytes. Used by MODEL_2 and by the Table IV DataComp column; the
  /// runtime recomputes exact transfer sizes from the actual footprints,
  /// so this is a per-iteration *characteristic*, not an accounting value.
  double transfer_bytes_per_iter = 0.0;

  /// Size of one element of the kernel's REAL type, for converting the
  /// paper's element-count ratios to byte ratios. 8 for double.
  double elem_bytes = 8.0;

  /// Whether the work of a single distributed-loop iteration can itself
  /// be split across a device's parallel units (true for every Table IV
  /// kernel: their inner loops provide ample parallelism). When false, a
  /// chunk smaller than the unit count leaves units idle and the
  /// within-device (teams) distribution quantizes — see
  /// OffloadOptions::teams_policy.
  bool divisible_iterations = true;

  /// MemComp (Table IV): memory load/stores per unit computation,
  /// in REAL elements per FLOP — AXPY is (2 loads + 1 store)/2 flops = 1.5.
  double mem_comp() const {
    return flops_per_iter > 0.0
               ? mem_bytes_per_iter / elem_bytes / flops_per_iter
               : 0.0;
  }

  /// DataComp (Table IV): data transferred per unit computation, in REAL
  /// elements per FLOP.
  double data_comp() const {
    return flops_per_iter > 0.0
               ? transfer_bytes_per_iter / elem_bytes / flops_per_iter
               : 0.0;
  }

  /// Computational intensity in FLOPs per transferred byte — the roofline
  /// abscissa the algorithm-selection heuristic keys on (§IV-D).
  double flops_per_transfer_byte() const {
    return transfer_bytes_per_iter > 0.0
               ? flops_per_iter / transfer_bytes_per_iter
               : 1e30;
  }

  /// FLOPs per byte of device-memory traffic.
  double flops_per_mem_byte() const {
    return mem_bytes_per_iter > 0.0 ? flops_per_iter / mem_bytes_per_iter
                                    : 1e30;
  }
};

}  // namespace homp::model

#endif  // HOMP_MODEL_KERNEL_PROFILE_H
