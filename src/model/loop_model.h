#ifndef HOMP_MODEL_LOOP_MODEL_H
#define HOMP_MODEL_LOOP_MODEL_H

/// \file loop_model.h
/// The paper's analytical loop-distribution models (§IV-B) and the CUTOFF
/// device-selection heuristic (§IV-E).
///
/// Both models reduce to computing a per-iteration cost c_i for each
/// device and solving the linear system of Eq. (3): find chunk sizes N_i
/// with sum N_i = N such that every device finishes at the same time T0.
/// With per-iteration costs, N_i * c_i = T0 for all i, so
/// N_i = N * (1/c_i) / sum_j (1/c_j) — proportional to rates. The solver
/// returns the weight vector (1/c_i normalized); Distribution::by_weights
/// turns it into chunk ranges.

#include <vector>

#include "machine/device.h"
#include "model/kernel_profile.h"

namespace homp::model {

/// Model-visible description of one device for prediction purposes,
/// extracted from the machine description (peak numbers + link constants —
/// the "machine characteristics obtained through microbenchmark profiling"
/// of §IV-B2).
struct DevicePredictionInput {
  double peak_flops = 0.0;      ///< FLOP/s
  double peak_membw_Bps = 0.0;  ///< bytes/s of device memory
  bool has_link = false;        ///< false for host / shared-memory devices
  double link_latency_s = 0.0;
  double link_bandwidth_Bps = 0.0;
  double launch_overhead_s = 0.0;
};

/// Build prediction inputs for a device list on a machine.
std::vector<DevicePredictionInput> prediction_inputs(
    const mach::MachineDescriptor& machine, const std::vector<int>& devices);

/// MODEL_1_AUTO per-iteration time: computation capability only (§IV-B1).
double model1_iter_time(const KernelCostProfile& k,
                        const DevicePredictionInput& d);

/// MODEL_2_AUTO per-iteration time: computation plus data movement
/// (§IV-B2): Hockney transfer of the iteration's data slice plus roofline
/// execution time.
double model2_iter_time(const KernelCostProfile& k,
                        const DevicePredictionInput& d);

/// Normalize per-device rates (iterations/second) into weights summing
/// to 1. Zero rates are allowed (weight 0) unless all are zero.
std::vector<double> weights_from_rates(const std::vector<double>& rates);

std::vector<double> model1_weights(
    const KernelCostProfile& k,
    const std::vector<DevicePredictionInput>& devices);

std::vector<double> model2_weights(
    const KernelCostProfile& k,
    const std::vector<DevicePredictionInput>& devices);

/// Predicted completion time T0 of Eq. (3) for `n_iters` distributed by
/// `weights` over devices with the given per-iteration times.
double predicted_completion_time(long long n_iters,
                                 const std::vector<double>& weights,
                                 const std::vector<double>& iter_times);

/// CUTOFF device selection (§IV-E): drop devices whose predicted
/// contribution falls below `cutoff_ratio` (e.g. 0.15).
///
/// The paper computes contributions once; applied literally to a machine
/// of identical devices that would drop *every* device (each contributes
/// 1/M < cutoff). We therefore drop iteratively — remove the smallest
/// contributor below the cutoff, renormalize, repeat — and always keep at
/// least one device. Ties drop the higher index (the "farther" device).
struct CutoffResult {
  std::vector<bool> selected;    ///< per input position
  std::vector<double> weights;   ///< renormalized; 0 for dropped devices
  /// The pre-drop shares (input weights normalized to sum 1): what each
  /// device was predicted to contribute before any drop. A dropped
  /// device's renormalized weight is 0, so this is the only place its
  /// predicted share survives — the offline advisor's drop-regret
  /// estimate divides by it (docs/OBSERVABILITY.md "Advisor").
  std::vector<double> pre_weights;
  int num_selected = 0;
};

CutoffResult apply_cutoff(const std::vector<double>& weights,
                          double cutoff_ratio);

}  // namespace homp::model

#endif  // HOMP_MODEL_LOOP_MODEL_H
