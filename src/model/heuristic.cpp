#include "model/heuristic.h"

namespace homp::model {

const char* to_string(KernelClass c) noexcept {
  switch (c) {
    case KernelClass::kComputeIntensive:
      return "compute-intensive";
    case KernelClass::kBalanced:
      return "balanced";
    case KernelClass::kDataIntensive:
      return "data-intensive";
  }
  return "?";
}

KernelClass classify(const KernelCostProfile& k) noexcept {
  const double data_comp = k.data_comp();
  if (data_comp >= 0.9) return KernelClass::kDataIntensive;
  if (data_comp >= 0.07) return KernelClass::kBalanced;
  return KernelClass::kComputeIntensive;
}

}  // namespace homp::model
