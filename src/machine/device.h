#ifndef HOMP_MACHINE_DEVICE_H
#define HOMP_MACHINE_DEVICE_H

/// \file device.h
/// Static description of one computation device and of the interconnect
/// links between host memory and device memories.
///
/// Two families of numbers live here deliberately:
///  * `peak_*`      — what the machine *advertises*; these feed the paper's
///                    analytical models (MODEL_1_AUTO / MODEL_2_AUTO and the
///                    CUTOFF contribution predictor).
///  * `sustained_*` — ground truth used by the simulator to compute how long
///                    a kernel chunk actually takes.
/// Keeping both reproduces a real phenomenon in the paper: the models
/// mispredict (e.g. Table V's matvec-48k row, where CUTOFF *hurts*), because
/// advertised capability and delivered throughput diverge differently per
/// device type.

#include <string>
#include <vector>

#include "sim/fault.h"

namespace homp::mach {

/// Device categories from the paper's device_specifier type filters
/// (HOMP_DEVICE_NVGPU etc.).
enum class DeviceType { kHost, kNvGpu, kMic };

const char* to_string(DeviceType t) noexcept;

/// Parse "host" / "nvgpu" / "mic" or the paper-style constants
/// "HOMP_DEVICE_HOST" / "HOMP_DEVICE_NVGPU" / "HOMP_DEVICE_ITLMIC"
/// (case-insensitive). Throws ConfigError on anything else.
DeviceType device_type_from_string(const std::string& s);

/// Whether the device shares the host's physical memory (mapping can be a
/// zero-copy "share") or owns discrete memory (mapping must copy).
enum class MemorySpace { kShared, kDiscrete };

const char* to_string(MemorySpace m) noexcept;
MemorySpace memory_space_from_string(const std::string& s);

/// Sentinel link id for devices that need no interconnect (host).
inline constexpr int kNoLink = -1;

struct LinkDescriptor {
  std::string name;        ///< e.g. "pcie0"
  double latency_s = 0.0;  ///< Hockney alpha
  double bandwidth_Bps = 0.0;  ///< Hockney beta, bytes/second
};

struct DeviceDescriptor {
  std::string name;  ///< e.g. "K40-0"
  DeviceType type = DeviceType::kHost;
  MemorySpace memory = MemorySpace::kDiscrete;
  int link = kNoLink;  ///< index into MachineDescriptor::links

  // Advertised (model-visible) capability.
  double peak_gflops = 0.0;
  double peak_membw_GBps = 0.0;

  // Delivered (simulation ground-truth) capability.
  double sustained_gflops = 0.0;
  double sustained_membw_GBps = 0.0;

  /// Fixed per-kernel-launch overhead (driver + runtime), seconds.
  double launch_overhead_s = 0.0;

  /// Fixed per-array device-memory allocation overhead (cudaMalloc-like),
  /// seconds. Zero for the host.
  double alloc_overhead_s = 0.0;

  /// Relative execution-time jitter amplitude (0.02 = +-2% 1-sigma).
  double noise = 0.0;

  /// Fault characteristics (all zero/never by default). Parsed from the
  /// optional `fault_*` keys of a machine file; the runtime combines them
  /// with OffloadOptions-level fault injection (docs/RESILIENCE.md).
  sim::FaultProfile fault;

  /// Independent execution units inside the device (SMs on a GPU, cores
  /// on a CPU/MIC): the "teams" of dist_schedule(teams:[...]). sustained_*
  /// figures describe all units together; a loop whose iterations cannot
  /// be split internally (KernelCostProfile::divisible_iterations false)
  /// quantizes onto these units.
  int parallel_units = 1;

  bool is_host() const noexcept { return type == DeviceType::kHost; }

  double peak_flops() const noexcept { return peak_gflops * 1e9; }
  double sustained_flops() const noexcept { return sustained_gflops * 1e9; }
  double peak_membw_Bps() const noexcept { return peak_membw_GBps * 1e9; }
  double sustained_membw_Bps() const noexcept {
    return sustained_membw_GBps * 1e9;
  }
};

/// Whole-node description: the host plus its accelerators and links.
/// The host device must be present exactly once and first (device id 0),
/// matching the HOMP runtime convention that the host is always a potential
/// compute device and the home of all mapped data.
struct MachineDescriptor {
  std::string name;
  std::vector<DeviceDescriptor> devices;
  std::vector<LinkDescriptor> links;

  /// Validates the structural invariants listed above; throws ConfigError.
  void validate() const;

  const DeviceDescriptor& host() const;
  std::size_t num_devices() const noexcept { return devices.size(); }

  /// Ids (indices into `devices`) of all devices of a given type.
  std::vector<int> devices_of_type(DeviceType t) const;
};

}  // namespace homp::mach

#endif  // HOMP_MACHINE_DEVICE_H
