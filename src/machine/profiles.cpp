#include "machine/profiles.h"

#include "common/error.h"

namespace homp::mach {

namespace {

DeviceDescriptor haswell_host() {
  DeviceDescriptor d;
  d.name = "2xE5-2699v3";
  d.type = DeviceType::kHost;
  d.memory = MemorySpace::kShared;
  d.link = kNoLink;
  d.peak_gflops = 1325.0;
  d.sustained_gflops = 850.0;
  d.peak_membw_GBps = 136.0;
  d.sustained_membw_GBps = 95.0;
  d.launch_overhead_s = 5e-6;  // OpenMP parallel region fork/join
  d.noise = 0.01;
  d.parallel_units = 36;  // 2 x 18 Haswell cores
  return d;
}

DeviceDescriptor k40(int index, int link) {
  DeviceDescriptor d;
  d.name = "K40-" + std::to_string(index);
  d.type = DeviceType::kNvGpu;
  d.memory = MemorySpace::kDiscrete;
  d.link = link;
  d.peak_gflops = 1430.0;
  d.sustained_gflops = 1100.0;
  d.peak_membw_GBps = 288.0;
  d.sustained_membw_GBps = 210.0;
  d.launch_overhead_s = 15e-6;
  d.alloc_overhead_s = 8e-6;
  d.noise = 0.015;
  d.parallel_units = 15;  // SMX count of a K40 die
  return d;
}

DeviceDescriptor phi7120(int index, int link) {
  DeviceDescriptor d;
  d.name = "Phi7120-" + std::to_string(index);
  d.type = DeviceType::kMic;
  d.memory = MemorySpace::kDiscrete;
  d.link = link;
  d.peak_gflops = 1208.0;
  d.sustained_gflops = 650.0;
  d.peak_membw_GBps = 352.0;
  d.sustained_membw_GBps = 160.0;
  d.launch_overhead_s = 150e-6;  // LEO offload-mode launch cost
  d.alloc_overhead_s = 30e-6;
  d.noise = 0.03;
  d.parallel_units = 61;  // KNC cores
  return d;
}

LinkDescriptor k80_pcie(int card) {
  // One PCIe3 x16 slot per K80 card, shared by its two K40 dies.
  return LinkDescriptor{"pcie-k80-" + std::to_string(card), 11e-6, 11e9};
}

LinkDescriptor mic_pcie(int index) {
  return LinkDescriptor{"pcie-mic-" + std::to_string(index), 20e-6, 6e9};
}

MachineDescriptor host_only() {
  MachineDescriptor m;
  m.name = "host-only";
  m.devices.push_back(haswell_host());
  return m;
}

MachineDescriptor gpu4() {
  MachineDescriptor m;
  m.name = "gpu4";
  m.devices.push_back(haswell_host());
  m.links.push_back(k80_pcie(0));
  m.links.push_back(k80_pcie(1));
  for (int i = 0; i < 4; ++i) m.devices.push_back(k40(i, i / 2));
  return m;
}

MachineDescriptor cpu_mic() {
  MachineDescriptor m;
  m.name = "cpu-mic";
  m.devices.push_back(haswell_host());
  for (int i = 0; i < 2; ++i) {
    m.links.push_back(mic_pcie(i));
    m.devices.push_back(phi7120(i, i));
  }
  return m;
}

MachineDescriptor full() {
  MachineDescriptor m;
  m.name = "full";
  m.devices.push_back(haswell_host());
  m.links.push_back(k80_pcie(0));
  m.links.push_back(k80_pcie(1));
  for (int i = 0; i < 4; ++i) m.devices.push_back(k40(i, i / 2));
  for (int i = 0; i < 2; ++i) {
    m.links.push_back(mic_pcie(i));
    m.devices.push_back(phi7120(i, 2 + i));
  }
  return m;
}

}  // namespace

std::vector<std::string> builtin_machine_names() {
  return {"host-only", "gpu4", "cpu-mic", "full"};
}

MachineDescriptor builtin(const std::string& name) {
  MachineDescriptor m;
  if (name == "host-only") {
    m = host_only();
  } else if (name == "gpu4") {
    m = gpu4();
  } else if (name == "cpu-mic") {
    m = cpu_mic();
  } else if (name == "full") {
    m = full();
  } else {
    throw ConfigError("unknown builtin machine: '" + name + "'");
  }
  m.validate();
  return m;
}

MachineDescriptor testing_machine(int n_accel, bool shared_link) {
  HOMP_REQUIRE(n_accel >= 0, "negative accelerator count");
  MachineDescriptor m;
  m.name = "testing-" + std::to_string(n_accel);
  DeviceDescriptor host;
  host.name = "test-host";
  host.type = DeviceType::kHost;
  host.memory = MemorySpace::kShared;
  host.link = kNoLink;
  host.peak_gflops = 50.0;
  host.sustained_gflops = 50.0;
  host.peak_membw_GBps = 50.0;
  host.sustained_membw_GBps = 50.0;
  host.launch_overhead_s = 0.0;
  host.noise = 0.0;
  m.devices.push_back(host);
  if (shared_link && n_accel > 0) {
    m.links.push_back(LinkDescriptor{"test-link", 1e-6, 10e9});
  }
  for (int i = 0; i < n_accel; ++i) {
    if (!shared_link) {
      m.links.push_back(
          LinkDescriptor{"test-link-" + std::to_string(i), 1e-6, 10e9});
    }
    DeviceDescriptor d;
    d.name = "test-accel-" + std::to_string(i);
    d.type = DeviceType::kNvGpu;
    d.memory = MemorySpace::kDiscrete;
    d.link = shared_link ? 0 : i;
    d.peak_gflops = 100.0;
    d.sustained_gflops = 100.0;
    d.peak_membw_GBps = 100.0;
    d.sustained_membw_GBps = 100.0;
    d.launch_overhead_s = 0.0;
    d.noise = 0.0;
    m.devices.push_back(d);
  }
  m.validate();
  return m;
}

}  // namespace homp::mach
