#ifndef HOMP_MACHINE_PROFILES_H
#define HOMP_MACHINE_PROFILES_H

/// \file profiles.h
/// Built-in machine descriptions modelled after the paper's evaluation
/// testbed: two Xeon E5-2699 v3 (Haswell) sockets treated as one host
/// device (as the paper does for CUTOFF accounting), four NVIDIA K40 dies
/// in two K80 cards, and two Intel Xeon Phi SC7120P coprocessors.
///
/// Calibration notes (all figures are deliberately *typical published*
/// numbers, since the point is relative behaviour, not absolute ms):
///  * host: peak 2 x 662 GF DP; sustained ~850 GF; STREAM ~95 GB/s.
///  * K40:  peak 1430 GF DP, sustained ~1100; GDDR5 288 GB/s peak,
///          ~210 sustained; the two dies of a K80 card share one PCIe3 x16
///          slot (~11 GB/s effective) — modelled as a shared link.
///  * Phi 7120P (KNC): peak 1208 GF DP but notoriously hard to saturate
///          (sustained ~650); PCIe ~6 GB/s effective, and LEO offload-mode
///          launch overhead is large (~150 us).

#include <string>
#include <vector>

#include "machine/device.h"

namespace homp::mach {

/// Names accepted by builtin(): "host-only", "gpu4", "cpu-mic", "full".
std::vector<std::string> builtin_machine_names();

/// Returns a validated built-in machine by name; throws ConfigError for an
/// unknown name.
MachineDescriptor builtin(const std::string& name);

/// Host + `n_accel` identical idealized accelerators with round-number
/// capabilities and zero noise — used by unit tests so expected virtual
/// times can be computed by hand.
///
/// Accelerator: 100 GFLOP/s, 100 GB/s memory, own link with 10 GB/s and
/// 1 us latency, 0 launch overhead. Host: 50 GFLOP/s, 50 GB/s, shared mem.
MachineDescriptor testing_machine(int n_accel, bool shared_link = false);

}  // namespace homp::mach

#endif  // HOMP_MACHINE_PROFILES_H
