#include "machine/device.h"

#include "common/error.h"
#include "common/strings.h"

namespace homp::mach {

const char* to_string(DeviceType t) noexcept {
  switch (t) {
    case DeviceType::kHost:
      return "host";
    case DeviceType::kNvGpu:
      return "nvgpu";
    case DeviceType::kMic:
      return "mic";
  }
  return "?";
}

DeviceType device_type_from_string(const std::string& s) {
  if (iequals(s, "host") || iequals(s, "HOMP_DEVICE_HOST") ||
      iequals(s, "cpu")) {
    return DeviceType::kHost;
  }
  if (iequals(s, "nvgpu") || iequals(s, "HOMP_DEVICE_NVGPU") ||
      iequals(s, "gpu")) {
    return DeviceType::kNvGpu;
  }
  if (iequals(s, "mic") || iequals(s, "HOMP_DEVICE_ITLMIC") ||
      iequals(s, "phi")) {
    return DeviceType::kMic;
  }
  throw ConfigError("unknown device type: '" + s + "'");
}

const char* to_string(MemorySpace m) noexcept {
  return m == MemorySpace::kShared ? "shared" : "discrete";
}

MemorySpace memory_space_from_string(const std::string& s) {
  if (iequals(s, "shared")) return MemorySpace::kShared;
  if (iequals(s, "discrete")) return MemorySpace::kDiscrete;
  throw ConfigError("unknown memory space: '" + s + "'");
}

void MachineDescriptor::validate() const {
  HOMP_REQUIRE(!devices.empty(), "machine has no devices");
  HOMP_REQUIRE(devices.front().is_host(),
               "device 0 must be the host device");
  std::size_t hosts = 0;
  for (const auto& d : devices) {
    if (d.is_host()) ++hosts;
    HOMP_REQUIRE(d.sustained_gflops > 0.0,
                 "device '" + d.name + "' has no sustained_gflops");
    HOMP_REQUIRE(d.peak_gflops >= d.sustained_gflops,
                 "device '" + d.name + "': peak below sustained");
    HOMP_REQUIRE(d.sustained_membw_GBps > 0.0,
                 "device '" + d.name + "' has no sustained_membw");
    HOMP_REQUIRE(d.launch_overhead_s >= 0.0,
                 "device '" + d.name + "': negative launch overhead");
    HOMP_REQUIRE(d.noise >= 0.0 && d.noise < 1.0,
                 "device '" + d.name + "': noise must be in [0,1)");
    HOMP_REQUIRE(d.parallel_units >= 1,
                 "device '" + d.name + "' needs at least one parallel unit");
    d.fault.validate("device '" + d.name + "'");
    if (d.link == kNoLink) {
      HOMP_REQUIRE(d.memory == MemorySpace::kShared,
                   "device '" + d.name +
                       "' has discrete memory but no interconnect link");
    } else {
      HOMP_REQUIRE(d.link >= 0 &&
                       static_cast<std::size_t>(d.link) < links.size(),
                   "device '" + d.name + "' references unknown link");
    }
  }
  HOMP_REQUIRE(hosts == 1, "machine must have exactly one host device");
  for (const auto& l : links) {
    HOMP_REQUIRE(l.bandwidth_Bps > 0.0,
                 "link '" + l.name + "' has no bandwidth");
    HOMP_REQUIRE(l.latency_s >= 0.0,
                 "link '" + l.name + "' has negative latency");
  }
}

const DeviceDescriptor& MachineDescriptor::host() const {
  HOMP_REQUIRE(!devices.empty() && devices.front().is_host(),
               "machine has no host device");
  return devices.front();
}

std::vector<int> MachineDescriptor::devices_of_type(DeviceType t) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (devices[i].type == t) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace homp::mach
