#include "machine/parser.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace homp::mach {

namespace {

struct Section {
  std::string kind;  // "machine" | "link" | "device"
  std::string name;
  int line = 0;
  std::map<std::string, std::string> kv;
  std::map<std::string, int> kline;  // per-key line, for error messages
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw ConfigError("machine description line " + std::to_string(line) +
                    ": " + msg);
}

double get_double(const Section& s, const std::string& key) {
  auto it = s.kv.find(key);
  if (it == s.kv.end()) {
    fail(s.line, "section [" + s.kind + " " + s.name + "] missing key '" +
                     key + "'");
  }
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(it->second, &pos);
  } catch (const std::exception&) {
    fail(s.line, "key '" + key + "' is not a number: '" + it->second + "'");
  }
  if (pos != it->second.size()) {
    fail(s.line, "key '" + key + "' has trailing characters after the "
                     "number: '" + it->second + "'");
  }
  return v;
}

double get_double_or(const Section& s, const std::string& key, double dflt) {
  return s.kv.count(key) ? get_double(s, key) : dflt;
}

int key_line(const Section& s, const std::string& key) {
  auto it = s.kline.find(key);
  return it == s.kline.end() ? s.line : it->second;
}

/// `fault_*_rate` keys are probabilities: [0, 1). Rejecting bad values at
/// parse time names the offending line; letting them through would only
/// surface as a ConfigError from FaultProfile::validate with no location.
double get_rate(const Section& s, const std::string& key) {
  const double v = get_double_or(s, key, 0.0);
  if (!std::isfinite(v) || v < 0.0 || v >= 1.0) {
    fail(key_line(s, key),
         "key '" + key + "' must be a probability in [0, 1), got " +
             std::to_string(v));
  }
  return v;
}

/// `fault_*_factor` keys are compute-time multipliers: finite and >= 1.
double get_factor(const Section& s, const std::string& key, double dflt) {
  const double v = get_double_or(s, key, dflt);
  if (!std::isfinite(v) || v < 1.0) {
    fail(key_line(s, key),
         "key '" + key + "' must be a slowdown multiplier >= 1, got " +
             std::to_string(v));
  }
  return v;
}

/// `fault_fail_at_s` is a virtual time: finite and >= 0, or exactly -1
/// ("never", the default). Other negatives are almost certainly typos.
double get_fail_time(const Section& s, const std::string& key) {
  const double v = get_double_or(s, key, -1.0);
  if (v == -1.0) return v;
  if (!std::isfinite(v) || v < 0.0) {
    fail(key_line(s, key),
         "key '" + key + "' must be a time >= 0 in virtual seconds "
         "(or -1 for never), got " + std::to_string(v));
  }
  return v;
}

std::string get_string(const Section& s, const std::string& key) {
  auto it = s.kv.find(key);
  if (it == s.kv.end()) {
    fail(s.line, "section [" + s.kind + " " + s.name + "] missing key '" +
                     key + "'");
  }
  return it->second;
}

std::vector<Section> tokenize(const std::string& text) {
  std::vector<Section> sections;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string_view line(raw);
    if (auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') fail(lineno, "unterminated section header");
      auto inner = trim(line.substr(1, line.size() - 2));
      auto space = inner.find(' ');
      Section s;
      s.line = lineno;
      if (space == std::string_view::npos) {
        s.kind = std::string(inner);
      } else {
        s.kind = std::string(trim(inner.substr(0, space)));
        s.name = std::string(trim(inner.substr(space + 1)));
      }
      if (s.kind != "machine" && s.kind != "link" && s.kind != "device") {
        fail(lineno, "unknown section kind '" + s.kind + "'");
      }
      if (s.kind != "machine" && s.name.empty()) {
        fail(lineno, "section [" + s.kind + "] needs a name");
      }
      // A repeated section would silently shadow (or be shadowed by) the
      // first one depending on pass order; name both lines instead.
      for (const auto& prev : sections) {
        if (prev.kind == s.kind && prev.name == s.name) {
          fail(lineno, "duplicate section [" + s.kind +
                           (s.name.empty() ? "" : " " + s.name) +
                           "] (first declared at line " +
                           std::to_string(prev.line) + ")");
        }
      }
      sections.push_back(std::move(s));
      continue;
    }
    auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail(lineno, "expected 'key = value' or section header");
    }
    if (sections.empty()) fail(lineno, "key outside of any section");
    auto key = std::string(trim(line.substr(0, eq)));
    auto value = std::string(trim(line.substr(eq + 1)));
    if (key.empty()) fail(lineno, "empty key");
    if (!sections.back().kv.emplace(key, value).second) {
      fail(lineno, "duplicate key '" + key + "'");
    }
    sections.back().kline.emplace(key, lineno);
  }
  return sections;
}

}  // namespace

MachineDescriptor parse_machine(const std::string& text) {
  MachineDescriptor m;
  std::map<std::string, int> link_ids;
  std::vector<DeviceDescriptor> accelerators;
  bool have_host = false;
  DeviceDescriptor host;

  // Links must be resolvable by the time devices reference them; collect
  // link sections in a first pass to make file order irrelevant.
  auto sections = tokenize(text);
  for (const auto& s : sections) {
    if (s.kind != "link") continue;
    if (link_ids.count(s.name)) fail(s.line, "duplicate link '" + s.name + "'");
    LinkDescriptor l;
    l.name = s.name;
    l.latency_s = get_double(s, "latency_us") * 1e-6;
    l.bandwidth_Bps = get_double(s, "bandwidth_GBps") * 1e9;
    link_ids.emplace(s.name, static_cast<int>(m.links.size()));
    m.links.push_back(std::move(l));
  }

  for (const auto& s : sections) {
    if (s.kind == "machine") {
      if (auto it = s.kv.find("name"); it != s.kv.end()) m.name = it->second;
      continue;
    }
    if (s.kind != "device") continue;
    DeviceDescriptor d;
    d.name = s.name;
    d.type = device_type_from_string(get_string(s, "type"));
    d.memory = memory_space_from_string(get_string(s, "memory"));
    const std::string link = get_string(s, "link");
    if (iequals(link, "none")) {
      d.link = kNoLink;
    } else {
      auto it = link_ids.find(link);
      if (it == link_ids.end()) {
        fail(s.line, "device '" + s.name + "' references unknown link '" +
                         link + "'");
      }
      d.link = it->second;
    }
    d.peak_gflops = get_double(s, "peak_gflops");
    d.sustained_gflops = get_double(s, "sustained_gflops");
    d.peak_membw_GBps = get_double(s, "peak_membw_GBps");
    d.sustained_membw_GBps = get_double(s, "sustained_membw_GBps");
    d.launch_overhead_s = get_double_or(s, "launch_overhead_us", 0.0) * 1e-6;
    d.alloc_overhead_s = get_double_or(s, "alloc_overhead_us", 0.0) * 1e-6;
    d.noise = get_double_or(s, "noise", 0.0);
    d.parallel_units =
        static_cast<int>(get_double_or(s, "parallel_units", 1.0));
    d.fault.transfer_fault_rate = get_rate(s, "fault_transfer_rate");
    d.fault.launch_fault_rate = get_rate(s, "fault_launch_rate");
    d.fault.slowdown_rate = get_rate(s, "fault_slowdown_rate");
    d.fault.slowdown_factor = get_factor(s, "fault_slowdown_factor", 4.0);
    d.fault.hang_rate = get_rate(s, "fault_hang_rate");
    d.fault.degrade_rate = get_rate(s, "fault_degrade_rate");
    d.fault.degrade_factor = get_factor(s, "fault_degrade_factor", 8.0);
    d.fault.corrupt_transfer_rate = get_rate(s, "fault_corrupt_transfer_rate");
    d.fault.corrupt_compute_rate = get_rate(s, "fault_corrupt_compute_rate");
    d.fault.fail_at_s = get_fail_time(s, "fault_fail_at_s");
    if (d.is_host()) {
      if (have_host) fail(s.line, "more than one host device");
      have_host = true;
      host = std::move(d);
    } else {
      accelerators.push_back(std::move(d));
    }
  }

  HOMP_REQUIRE(have_host, "machine description declares no host device");
  m.devices.push_back(std::move(host));
  for (auto& d : accelerators) m.devices.push_back(std::move(d));
  m.validate();
  return m;
}

MachineDescriptor load_machine_file(const std::string& path) {
  std::ifstream in(path);
  HOMP_REQUIRE(in.good(), "cannot open machine description file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_machine(buf.str());
}

std::string to_text(const MachineDescriptor& m) {
  std::ostringstream os;
  char buf[128];
  os << "[machine]\nname = " << m.name << "\n";
  for (const auto& l : m.links) {
    os << "\n[link " << l.name << "]\n";
    std::snprintf(buf, sizeof buf, "latency_us = %.6g\nbandwidth_GBps = %.6g\n",
                  l.latency_s * 1e6, l.bandwidth_Bps * 1e-9);
    os << buf;
  }
  for (const auto& d : m.devices) {
    os << "\n[device " << d.name << "]\n";
    os << "type = " << to_string(d.type) << "\n";
    os << "memory = " << to_string(d.memory) << "\n";
    os << "link = "
       << (d.link == kNoLink ? std::string("none") : m.links[d.link].name)
       << "\n";
    std::snprintf(buf, sizeof buf,
                  "peak_gflops = %.6g\nsustained_gflops = %.6g\n",
                  d.peak_gflops, d.sustained_gflops);
    os << buf;
    std::snprintf(buf, sizeof buf,
                  "peak_membw_GBps = %.6g\nsustained_membw_GBps = %.6g\n",
                  d.peak_membw_GBps, d.sustained_membw_GBps);
    os << buf;
    std::snprintf(buf, sizeof buf,
                  "launch_overhead_us = %.6g\nalloc_overhead_us = %.6g\n"
                  "noise = %.6g\nparallel_units = %d\n",
                  d.launch_overhead_s * 1e6, d.alloc_overhead_s * 1e6,
                  d.noise, d.parallel_units);
    os << buf;
    // Fault keys are optional; emit them only when set so fault-free
    // machine files round-trip byte-identically.
    if (d.fault.any()) {
      std::snprintf(buf, sizeof buf,
                    "fault_transfer_rate = %.6g\nfault_launch_rate = %.6g\n"
                    "fault_slowdown_rate = %.6g\n",
                    d.fault.transfer_fault_rate, d.fault.launch_fault_rate,
                    d.fault.slowdown_rate);
      os << buf;
      std::snprintf(buf, sizeof buf, "fault_slowdown_factor = %.6g\n",
                    d.fault.slowdown_factor);
      os << buf;
      std::snprintf(buf, sizeof buf,
                    "fault_hang_rate = %.6g\nfault_degrade_rate = %.6g\n"
                    "fault_degrade_factor = %.6g\n",
                    d.fault.hang_rate, d.fault.degrade_rate,
                    d.fault.degrade_factor);
      os << buf;
      std::snprintf(buf, sizeof buf,
                    "fault_corrupt_transfer_rate = %.6g\n"
                    "fault_corrupt_compute_rate = %.6g\n",
                    d.fault.corrupt_transfer_rate,
                    d.fault.corrupt_compute_rate);
      os << buf;
      if (d.fault.fail_at_s >= 0.0) {
        std::snprintf(buf, sizeof buf, "fault_fail_at_s = %.6g\n",
                      d.fault.fail_at_s);
        os << buf;
      }
    }
  }
  return os.str();
}

}  // namespace homp::mach
