#ifndef HOMP_MACHINE_PARSER_H
#define HOMP_MACHINE_PARSER_H

/// \file parser.h
/// Machine-description file reader/writer.
///
/// The paper's runtime "reads from a given machine description file the
/// specification of host CPU and accelerators". We use a small INI-style
/// format:
///
///     [machine]
///     name = full
///
///     [link pcie0]
///     latency_us = 11
///     bandwidth_GBps = 11
///
///     [device K40-0]
///     type = nvgpu            # host | nvgpu | mic
///     memory = discrete       # shared | discrete
///     link = pcie0            # link name, or "none"
///     peak_gflops = 1430
///     sustained_gflops = 1100
///     peak_membw_GBps = 288
///     sustained_membw_GBps = 210
///     launch_overhead_us = 15
///     noise = 0.015
///
/// '#' starts a comment. Section and key order is free, except that exactly
/// one host device must be declared; the host is placed first (device id 0)
/// regardless of file order, and accelerators keep their file order.

#include <string>

#include "machine/device.h"

namespace homp::mach {

/// Parse a machine description from text. Throws ConfigError with a line
/// number on malformed input; the result is validate()d before returning.
MachineDescriptor parse_machine(const std::string& text);

/// Read and parse a description file. Throws ConfigError if unreadable.
MachineDescriptor load_machine_file(const std::string& path);

/// Serialize to the file format (round-trips through parse_machine).
std::string to_text(const MachineDescriptor& m);

}  // namespace homp::mach

#endif  // HOMP_MACHINE_PARSER_H
