#ifndef HOMP_SERVE_TENANT_H
#define HOMP_SERVE_TENANT_H

/// \file tenant.h
/// Multi-tenant serving vocabulary (docs/SERVING.md): who submits work
/// (TenantSpec), what one job is (JobSpec), and the admission verdicts
/// and audit events the server emits while deciding.
///
/// Priority classes are strict — a queued gold job always dispatches
/// before silver and bronze — except for the lowest class's starvation
/// floor (ServeOptions::floor_fraction). Within a class, tenants share
/// capacity by weighted-fair queueing over MODEL_2-predicted device
/// seconds.

#include <cstdint>
#include <string>

#include "sched/algorithm.h"
#include "sim/fault.h"

namespace homp::serve {

/// Strict-priority classes, highest first.
enum class PriorityClass { kGold = 0, kSilver = 1, kBronze = 2 };

inline constexpr int kNumClasses = 3;

const char* to_string(PriorityClass c) noexcept;

/// What submit() does when the tenant's bounded queue is full.
enum class BackpressureMode {
  kReject,  ///< fail fast with a retry-after hint
  kBlock,   ///< park the submission; it enters the queue when room opens
};

const char* to_string(BackpressureMode m) noexcept;

struct TenantSpec {
  std::string name;
  PriorityClass priority = PriorityClass::kSilver;
  /// Weighted-fair share within the priority class (> 0).
  double weight = 1.0;
  BackpressureMode backpressure = BackpressureMode::kReject;
  /// Bounded admission-queue depth; the overflow behavior is
  /// `backpressure`.
  std::size_t max_queue_depth = 64;
  /// Per-tenant fault script applied (on top of the machine's own fault
  /// profile) to every job this tenant runs — a tenant whose kernels
  /// crash devices must not take the cluster down (docs/RESILIENCE.md).
  sim::FaultProfile fault;
};

/// One offload request as a tenant submits it.
struct JobSpec {
  /// Evaluation-kernel name understood by kern::make_case.
  std::string kernel = "axpy";
  /// Problem size (loop iterations).
  long long n = 1 << 14;
  /// Devices requested; the grant may be smaller (shed level >= 2, or
  /// fewer devices free).
  int devices = 2;
  /// Relative completion deadline; 0 disables deadline admission. A job
  /// whose MODEL_2-predicted completion (queue-wait estimate + predicted
  /// run time) exceeds it is rejected at submit.
  double deadline_s = 0.0;
  sched::AlgorithmKind algorithm = sched::AlgorithmKind::kDynamic;
};

enum class AdmitOutcome {
  kAdmitted,
  kBlocked,             ///< parked in the vestibule (kBlock backpressure)
  kRejectedQueueFull,   ///< bounded queue full (kReject backpressure)
  kRejectedDeadline,    ///< predicted completion exceeds the deadline
  kRejectedShed,        ///< shed level 3: lowest class refused at the door
  kRejectedInfeasible,  ///< cannot fit device memory on any device count
  kRejectedBreaker,     ///< tenant circuit breaker open; retry after hint
};

const char* to_string(AdmitOutcome o) noexcept;

/// submit()'s synchronous verdict.
struct SubmitResult {
  AdmitOutcome outcome = AdmitOutcome::kAdmitted;
  /// Assigned id (admitted/blocked outcomes only).
  std::uint64_t job_id = 0;
  /// Queue-drain estimate for kRejectedQueueFull: come back in about
  /// this many virtual seconds.
  double retry_after_s = 0.0;
  std::string detail;

  bool accepted() const noexcept {
    return outcome == AdmitOutcome::kAdmitted ||
           outcome == AdmitOutcome::kBlocked;
  }
};

/// Serve-side decision audit (the serving counterpart of the runtime's
/// SchedDecision stream): every admission verdict, dispatch, completion
/// and shed-ladder transition, in virtual-time order.
enum class ServeEventKind {
  kSubmit,
  kAdmit,
  kReject,
  kBlock,
  kUnblock,   ///< vestibule -> queue (room opened)
  kDispatch,
  kComplete,
  kFail,          ///< terminal kFail record (contained unrecoverable error)
  kCancel,        ///< terminal kCancelled record (deadline miss, revocation)
  kShedLevel,     ///< ladder transition; detail carries "L_old -> L_new"
  kBreakerOpen,   ///< tenant circuit breaker tripped; detail has cooldown
  kBreakerProbe,  ///< half-open: one submission admitted as a probe
  kBreakerClose,  ///< probe succeeded; tenant restored to full admission
};

const char* to_string(ServeEventKind k) noexcept;

struct ServeEvent {
  double time = 0.0;  ///< absolute virtual time
  ServeEventKind kind = ServeEventKind::kSubmit;
  std::string tenant;  ///< empty for server-wide events (kShedLevel)
  std::uint64_t job_id = 0;  ///< 0 when not job-scoped
  PriorityClass priority = PriorityClass::kSilver;
  std::string detail;
};

}  // namespace homp::serve

#endif  // HOMP_SERVE_TENANT_H
