#include "serve/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>

#include "obs/metric_names.h"

namespace homp::serve {

namespace {

// Same deterministic formatting contract as the metrics registry
// (docs/OBSERVABILITY.md): integral doubles print as integers, the rest
// as %.17g, so the summary round-trips bit-exactly across runs.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void json_escape_into(std::ostream& os, const std::string& s) {
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"') {
      os << "\\\"";
    } else if (c == '\\') {
      os << "\\\\";
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      os << buf;
    } else {
      os << c;
    }
  }
}

double nearest_rank(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = std::ceil(q * static_cast<double>(v.size()));
  auto idx = static_cast<std::size_t>(std::max(1.0, rank)) - 1;
  if (idx >= v.size()) idx = v.size() - 1;
  return v[idx];
}

/// Latency/goodput aggregate over one subset of completed jobs.
struct Agg {
  std::vector<double> latencies;
  std::vector<double> waits;
  long long iterations = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;

  void take(const JobRecord& j) {
    if (j.outcome == JobOutcome::kCompleted) {
      latencies.push_back(j.latency());
      waits.push_back(j.queue_wait());
      iterations += j.iterations_done;
      ++completed;
    } else if (j.outcome == JobOutcome::kCancelled) {
      ++cancelled;
    } else {
      ++failed;
    }
  }

  void write(std::ostream& os, double makespan) {
    os << "\"completed\": " << completed << ", \"failed\": " << failed
       << ", \"cancelled\": " << cancelled
       << ", \"iterations\": " << iterations
       << ", \"p50_latency_s\": " << format_number(nearest_rank(latencies, 0.50))
       << ", \"p99_latency_s\": " << format_number(nearest_rank(latencies, 0.99))
       << ", \"p50_queue_wait_s\": " << format_number(nearest_rank(waits, 0.50))
       << ", \"goodput_iters_per_s\": "
       << format_number(makespan > 0.0
                            ? static_cast<double>(iterations) / makespan
                            : 0.0);
  }
};

}  // namespace

const char* to_string(JobOutcome o) noexcept {
  switch (o) {
    case JobOutcome::kCompleted: return "completed";
    case JobOutcome::kFail: return "fail";
    case JobOutcome::kCancelled: return "cancelled";
  }
  return "?";
}

double ServeReport::latency_percentile(double q,
                                       const PriorityClass* cls) const {
  std::vector<double> lat;
  for (const auto& j : jobs) {
    if (!j.ok) continue;
    if (cls != nullptr && j.priority != *cls) continue;
    lat.push_back(j.latency());
  }
  return nearest_rank(lat, q);
}

std::vector<std::string> ServeReport::validate() const {
  std::vector<std::string> out = violations;

  // Iteration conservation: a completed job committed exactly the
  // iterations it asked for — shedding degrades latency and admission,
  // never answers. Failed/cancelled jobs surrender coverage but must be
  // honest about it: a terminal record always names its error class, and
  // `ok` is exactly "completed".
  for (const auto& j : jobs) {
    if (j.outcome == JobOutcome::kCompleted && j.iterations_done != j.n) {
      out.push_back("job " + std::to_string(j.job_id) + " (" + j.tenant +
                    "): committed " + std::to_string(j.iterations_done) +
                    " of " + std::to_string(j.n) + " iterations");
    }
    if (j.ok != (j.outcome == JobOutcome::kCompleted)) {
      out.push_back("job " + std::to_string(j.job_id) + " (" + j.tenant +
                    "): ok flag disagrees with outcome " +
                    std::string(to_string(j.outcome)));
    }
    if (j.outcome != JobOutcome::kCompleted && j.error_class.empty()) {
      out.push_back("job " + std::to_string(j.job_id) + " (" + j.tenant +
                    "): " + std::string(to_string(j.outcome)) +
                    " record without an error class");
    }
  }

  // Audit monotonicity.
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i].time < events[i - 1].time) {
      out.push_back("audit time went backwards at event " +
                    std::to_string(i) + " (" +
                    std::string(to_string(events[i].kind)) + ")");
      break;
    }
  }

  // Per-tenant FIFO: jobs leave each tenant's queue in the order they
  // entered it (admit order; unblocked jobs are admitted when they leave
  // the vestibule, so the contract covers both paths).
  std::map<std::string, std::vector<std::uint64_t>> admitted, dispatched;
  for (const auto& e : events) {
    if (e.kind == ServeEventKind::kAdmit) admitted[e.tenant].push_back(e.job_id);
    if (e.kind == ServeEventKind::kDispatch)
      dispatched[e.tenant].push_back(e.job_id);
  }
  for (const auto& [tenant, order] : dispatched) {
    const auto& in = admitted[tenant];
    // Dispatch order must be a prefix-respecting subsequence of the
    // admit order; with every admitted job eventually dispatched they
    // must match element-wise.
    std::size_t pos = 0;
    for (std::uint64_t id : order) {
      while (pos < in.size() && in[pos] != id) ++pos;
      if (pos == in.size()) {
        out.push_back("tenant " + tenant + ": job " + std::to_string(id) +
                      " dispatched out of FIFO order");
        break;
      }
      ++pos;
    }
  }

  // Drained-run accounting: every admitted job ends in exactly one of
  // the three terminal states.
  for (std::size_t t = 0; t < counts.size(); ++t) {
    const auto& c = counts[t];
    if (c.admitted != c.completed + c.failed + c.cancelled) {
      out.push_back("tenant " + tenants[t] + ": admitted " +
                    std::to_string(c.admitted) + " but finished " +
                    std::to_string(c.completed + c.failed + c.cancelled));
    }
  }
  return out;
}

void ServeReport::export_metrics(obs::MetricsRegistry& reg) const {
  using namespace obs::names;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const auto& c = counts[t];
    const std::string lbl = "tenant=\"" + tenants[t] + "\"";
    reg.add(kServeSubmitted, lbl, static_cast<double>(c.submitted));
    reg.add(kServeAdmitted, lbl, static_cast<double>(c.admitted));
    reg.add(kServeBlocked, lbl, static_cast<double>(c.blocked));
    reg.add(kServeCompleted, lbl, static_cast<double>(c.completed));
    reg.add(kServeFailed, lbl, static_cast<double>(c.failed));
    reg.add(kServeCancelled, lbl, static_cast<double>(c.cancelled));
    reg.add(kServeBreakerTrips, lbl, static_cast<double>(c.breaker_trips));
    reg.add(kServeIterations, lbl, static_cast<double>(c.iterations));
    reg.add(kServeRejected, lbl + ",reason=\"queue-full\"",
            static_cast<double>(c.rejected_queue_full));
    reg.add(kServeRejected, lbl + ",reason=\"deadline\"",
            static_cast<double>(c.rejected_deadline));
    reg.add(kServeRejected, lbl + ",reason=\"shed\"",
            static_cast<double>(c.rejected_shed));
    reg.add(kServeRejected, lbl + ",reason=\"infeasible\"",
            static_cast<double>(c.rejected_infeasible));
    reg.add(kServeRejected, lbl + ",reason=\"breaker\"",
            static_cast<double>(c.rejected_breaker));
  }
  for (const auto& j : jobs) {
    if (!j.ok) continue;
    reg.observe(kServeLatency,
                std::string("class=\"") + to_string(j.priority) + "\"",
                j.latency());
    reg.observe(kServeQueueWait, "tenant=\"" + j.tenant + "\"",
                j.queue_wait());
  }
  reg.add(kServeSpecShed, {}, static_cast<double>(speculation_shed_jobs));
  reg.set(kServeShedLevel, {}, static_cast<double>(final_shed_level));
  reg.add(kServeShedTransitions, {}, static_cast<double>(shed_transitions));
  reg.add(kServeViolations, {}, static_cast<double>(violations.size()));
}

void ServeReport::write_summary_json(std::ostream& os) const {
  const auto breaches = validate();

  os << "{\n  \"schema\": \"homp-serve-report-v2\",\n";
  os << "  \"makespan_s\": " << format_number(makespan_s) << ",\n";
  os << "  \"jobs\": " << jobs.size() << ",\n";
  os << "  \"shed\": {\"final_level\": " << final_shed_level
     << ", \"transitions\": " << shed_transitions
     << ", \"speculation_shed_jobs\": " << speculation_shed_jobs << "},\n";

  os << "  \"violations\": [";
  for (std::size_t i = 0; i < breaches.size(); ++i) {
    if (i > 0) os << ", ";
    os << '"';
    json_escape_into(os, breaches[i]);
    os << '"';
  }
  os << "],\n";

  // Per class, in priority order (deterministic: enum order).
  os << "  \"classes\": {";
  for (int c = 0; c < kNumClasses; ++c) {
    const auto cls = static_cast<PriorityClass>(c);
    Agg agg;
    std::size_t rejected = 0;
    for (const auto& j : jobs) {
      if (j.priority == cls) agg.take(j);
    }
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      if (tenant_priority[t] == cls) rejected += counts[t].rejected();
    }
    if (c > 0) os << ", ";
    os << '"' << to_string(cls) << "\": {";
    agg.write(os, makespan_s);
    os << ", \"rejected\": " << rejected << '}';
  }
  os << "},\n";

  // Per tenant, in server index order (deterministic).
  os << "  \"tenants\": {";
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    Agg agg;
    for (const auto& j : jobs) {
      if (j.tenant == tenants[t]) agg.take(j);
    }
    const auto& c = counts[t];
    if (t > 0) os << ", ";
    os << '"';
    json_escape_into(os, tenants[t]);
    os << "\": {\"class\": \"" << to_string(tenant_priority[t])
       << "\", \"submitted\": " << c.submitted
       << ", \"admitted\": " << c.admitted << ", \"blocked\": " << c.blocked
       << ", \"rejected_queue_full\": " << c.rejected_queue_full
       << ", \"rejected_deadline\": " << c.rejected_deadline
       << ", \"rejected_shed\": " << c.rejected_shed
       << ", \"rejected_infeasible\": " << c.rejected_infeasible
       << ", \"rejected_breaker\": " << c.rejected_breaker
       << ", \"breaker_trips\": " << c.breaker_trips << ", ";
    agg.write(os, makespan_s);
    // Error classes of this tenant's kFail/kCancelled records, sorted by
    // class name (std::map) for deterministic output.
    std::map<std::string, std::size_t> classes;
    for (const auto& j : jobs) {
      if (j.tenant == tenants[t] && j.outcome != JobOutcome::kCompleted) {
        ++classes[j.error_class];
      }
    }
    os << ", \"error_classes\": {";
    bool first_cls = true;
    for (const auto& [cls_name, count] : classes) {
      if (!first_cls) os << ", ";
      first_cls = false;
      os << '"';
      json_escape_into(os, cls_name);
      os << "\": " << count;
    }
    os << "}}";
  }
  os << "}\n}\n";
}

void ServeReport::write_audit_json(std::ostream& os) const {
  os << "{\n  \"homp_serve_audit_version\": 1,\n"
     << "  \"makespan_s\": " << format_number(makespan_s)
     << ",\n  \"final_shed_level\": " << final_shed_level
     << ",\n  \"shed_transitions\": " << shed_transitions
     << ",\n  \"speculation_shed_jobs\": " << speculation_shed_jobs;

  os << ",\n  \"tenants\": [";
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const auto& c = counts[t];
    os << (t ? ",\n" : "\n") << "    {\"name\": \"";
    json_escape_into(os, tenants[t]);
    os << "\", \"class\": \"" << to_string(tenant_priority[t])
       << "\", \"submitted\": " << c.submitted
       << ", \"admitted\": " << c.admitted << ", \"blocked\": " << c.blocked
       << ", \"rejected_queue_full\": " << c.rejected_queue_full
       << ", \"rejected_deadline\": " << c.rejected_deadline
       << ", \"rejected_shed\": " << c.rejected_shed
       << ", \"rejected_infeasible\": " << c.rejected_infeasible
       << ", \"rejected_breaker\": " << c.rejected_breaker
       << ", \"completed\": " << c.completed << ", \"failed\": " << c.failed
       << ", \"cancelled\": " << c.cancelled
       << ", \"breaker_trips\": " << c.breaker_trips
       << ", \"iterations\": " << c.iterations << '}';
  }

  os << "\n  ],\n  \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ServeEvent& e = events[i];
    os << (i ? ",\n" : "\n") << "    {\"time_s\": " << format_number(e.time)
       << ", \"kind\": \"" << to_string(e.kind) << "\", \"tenant\": \"";
    json_escape_into(os, e.tenant);
    os << "\", \"job_id\": " << e.job_id << ", \"class\": \""
       << to_string(e.priority) << "\", \"detail\": \"";
    json_escape_into(os, e.detail);
    os << "\"}";
  }
  os << "\n  ]\n}\n";
}

void ServeReport::write_trace_json(std::ostream& os) const {
  // chrome://tracing JSON array format; mirrors runtime/trace.cpp's
  // conventions (absolute microsecond timestamps, metadata rows first)
  // but lays tenants out as processes so the viewer groups them.
  os << "[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  for (std::size_t t = 0; t < tenants.size(); ++t) {
    sep();
    os << R"({"name": "process_name", "ph": "M", "pid": )" << (t + 1)
       << R"(, "tid": 0, "args": {"name": ")";
    json_escape_into(os, tenants[t]);
    os << "\"}}";
  }

  std::map<std::string, std::size_t> tenant_index;
  for (std::size_t t = 0; t < tenants.size(); ++t) tenant_index[tenants[t]] = t;

  auto us = [](double s) { return s * 1e6; };

  for (const auto& j : jobs) {
    const std::size_t pid = tenant_index.count(j.tenant)
                                ? tenant_index[j.tenant] + 1
                                : tenants.size() + 1;
    // One viewer thread per (job, device slot); job ids keep tids
    // globally unique across tenants.
    std::map<int, bool> named;
    for (const auto& span : j.trace) {
      const auto tid = j.job_id * 64 + static_cast<std::uint64_t>(span.slot);
      if (!named[span.slot]) {
        named[span.slot] = true;
        sep();
        os << R"({"name": "thread_name", "ph": "M", "pid": )" << pid
           << R"(, "tid": )" << tid << R"(, "args": {"name": "job)"
           << j.job_id << ' ';
        json_escape_into(os, span.device);
        os << "\"}}";
      }
      sep();
      os << R"({"name": ")" << rt::to_string(span.phase)
         << R"(", "cat": "offload", "ph": "X", "pid": )" << pid
         << R"(, "tid": )" << tid << R"(, "ts": )" << format_number(us(span.t0))
         << R"(, "dur": )" << format_number(us(span.t1 - span.t0))
         << R"(, "args": {"label": ")";
      json_escape_into(os, span.label);
      os << "\"}}";
    }
  }

  for (const auto& e : events) {
    const std::size_t pid =
        e.tenant.empty() || !tenant_index.count(e.tenant)
            ? 0
            : tenant_index[e.tenant] + 1;
    sep();
    os << R"({"name": ")" << to_string(e.kind)
       << R"(", "cat": "serve", "ph": "i", "s": "g", "pid": )" << pid
       << R"(, "tid": 0, "ts": )" << format_number(us(e.time))
       << R"(, "args": {"job": )" << e.job_id << R"(, "detail": ")";
    json_escape_into(os, e.detail);
    os << "\"}}";
  }

  os << "\n]\n";
}

}  // namespace homp::serve
