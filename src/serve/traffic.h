#ifndef HOMP_SERVE_TRAFFIC_H
#define HOMP_SERVE_TRAFFIC_H

/// \file traffic.h
/// Deterministic multi-tenant traffic generation for the offload server
/// (docs/SERVING.md): per-tenant open-loop (Poisson arrivals) or
/// closed-loop (fixed population with think time) job streams with
/// heavy-tailed (bounded-Pareto) problem sizes, driven entirely in
/// virtual time on the server's shared engine. Same seeds => the same
/// arrival sequence => the same serving run, byte for byte.

#include <cstdint>
#include <vector>

#include "common/prng.h"
#include "serve/server.h"
#include "serve/tenant.h"

namespace homp::serve {

/// One tenant's workload shape.
struct TenantLoad {
  TenantSpec tenant;
  /// Job template; `n` is overridden by the per-arrival size draw.
  JobSpec job;

  /// false: open loop — Poisson arrivals at `arrival_rate_hz`,
  /// rejections are dropped (that is the overload signal being
  /// measured). true: closed loop — `population` outstanding jobs, each
  /// resubmitting `think_s` after completion; queue-full rejections
  /// retry after the server's retry-after hint.
  bool closed_loop = false;
  double arrival_rate_hz = 10.0;
  int population = 4;
  double think_s = 0.0;

  /// Bounded-Pareto problem-size distribution (heavy tail).
  long long size_min = 1 << 12;
  long long size_max = 1 << 16;
  double tail_alpha = 1.5;

  /// Stop submitting past this virtual time (jobs in flight complete).
  double duration_s = 1.0;
  /// Hard cap on submissions; 0 = duration-bound only.
  std::size_t max_jobs = 0;

  std::uint64_t seed = 1;
};

/// See file comment. start() schedules the first arrivals; the caller
/// then drives server.run(). The generator must outlive the run.
class TrafficGen {
 public:
  TrafficGen(OffloadServer& server, std::vector<TenantLoad> loads);

  /// Schedule every tenant's opening arrivals on the server's engine.
  void start();

  /// Jobs submitted so far (accepted or not).
  std::size_t submitted() const noexcept { return submitted_; }

 private:
  struct Stream {
    TenantLoad load;
    Prng prng;
    std::size_t sent = 0;
  };

  long long draw_size(Stream& s);
  double draw_interarrival(Stream& s);
  void open_arrival(std::size_t idx);
  void closed_submit(std::size_t idx);

  OffloadServer& server_;
  std::vector<Stream> streams_;
  std::size_t submitted_ = 0;
  /// Generation tag for every timer this generator arms (homp-lint
  /// HL006): all pending arrivals are cancellable as one unit and the
  /// drained engine retires the generation, keeping `--soak` flat.
  sim::Engine::GenTag gen_ = 0;
};

}  // namespace homp::serve

#endif  // HOMP_SERVE_TRAFFIC_H
