#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "common/error.h"
#include "kernels/case.h"
#include "model/loop_model.h"
#include "runtime/offload_exec.h"

namespace homp::serve {

namespace {

/// splitmix-style derivation of per-job seeds from the root seed, so
/// every job draws from an unrelated deterministic stream.
std::uint64_t mix_seed(std::uint64_t root, std::uint64_t salt) {
  std::uint64_t x = root ^ (salt * 0x9e3779b97f4a7c15ull);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}

std::string format_seconds(double s) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g s", s);
  return buf;
}

}  // namespace

/// One admitted-but-not-yet-dispatched job. Owns the kernel case from
/// submit so dispatch never re-parses or re-allocates.
struct OffloadServer::PendingJob {
  std::uint64_t job_id = 0;
  JobSpec spec;
  std::unique_ptr<kern::KernelCase> kcase;
  double predicted_s = 0.0;
  double total_bytes = 0.0;
  int min_devices = 1;
  double submit_time = 0.0;
  double enqueue_time = 0.0;
  double vestibule_since = 0.0;
  double blocked_s = 0.0;
  /// Engine event id of the armed deadline timer; 0 = none.
  std::uint64_t deadline_event = 0;
  std::function<void(const JobRecord&)> on_done;
};

/// One dispatched job. The kernel case, the LoopKernel and the map
/// vector live here because OffloadExecution holds them by reference.
/// Destroyed the moment the job reaches a terminal state: the
/// execution's generation tag cancels every timer it still has queued,
/// so nothing needs to outlive completion.
struct OffloadServer::ActiveJob {
  int tenant = -1;
  std::unique_ptr<kern::KernelCase> kcase;
  rt::LoopKernel kernel;
  std::vector<mem::MapSpec> maps;
  std::vector<int> devices;
  double footprint_per_dev = 0.0;
  std::uint64_t deadline_event = 0;
  JobRecord record;
  std::function<void(const JobRecord&)> on_done;
  std::unique_ptr<rt::OffloadExecution> exec;
};

struct OffloadServer::DeviceState {
  std::uint64_t holder = 0;  ///< job id; 0 = free
  double mem_used = 0.0;
};

struct OffloadServer::TenantState {
  TenantSpec spec;
  std::deque<PendingJob> queue;      ///< bounded by spec.max_queue_depth
  std::deque<PendingJob> vestibule;  ///< kBlock overflow, unbounded
  double service = 0.0;    ///< WFQ credit, predicted device-seconds
  double backlog_s = 0.0;  ///< predicted seconds queued (incl. vestibule)

  // Circuit breaker (ServeOptions::breaker_threshold).
  int consecutive_failures = 0;
  int breaker_trips = 0;
  bool breaker_open = false;
  double breaker_open_until = 0.0;  ///< absolute time; half-open after
  bool probe_outstanding = false;
  std::uint64_t probe_job_id = 0;
};

OffloadServer::OffloadServer(mach::MachineDescriptor machine,
                             std::vector<TenantSpec> tenants,
                             ServeOptions opts)
    : machine_(std::move(machine)), opts_(std::move(opts)) {
  machine_.validate();
  if (tenants.empty()) {
    throw ConfigError("OffloadServer needs at least one tenant");
  }
  if (opts_.device_mem_bytes <= 0.0) {
    throw ConfigError("ServeOptions::device_mem_bytes must be positive");
  }
  if (opts_.floor_fraction < 0.0 || opts_.floor_fraction >= 1.0) {
    throw ConfigError("ServeOptions::floor_fraction must be in [0, 1)");
  }
  if (!(opts_.shed_l1_depth <= opts_.shed_l2_depth &&
        opts_.shed_l2_depth <= opts_.shed_l3_depth)) {
    throw ConfigError("shed ladder depths must be non-decreasing");
  }
  if (opts_.breaker_threshold < 0) {
    throw ConfigError("ServeOptions::breaker_threshold must be >= 0");
  }
  if (opts_.breaker_threshold > 0 &&
      (opts_.breaker_cooldown_base_s <= 0.0 ||
       opts_.breaker_cooldown_growth < 1.0 ||
       opts_.breaker_cooldown_cap_s < opts_.breaker_cooldown_base_s)) {
    throw ConfigError(
        "breaker cooldown needs base > 0, growth >= 1, cap >= base");
  }
  gen_ = engine_.new_generation();

  // Shared link lanes: one down/up pair per machine link, borrowed by
  // every execution — PCIe contention between tenants falls out of the
  // lanes' processor sharing.
  for (const auto& link : machine_.links) {
    down_lanes_.push_back(std::make_unique<sim::SharedLink>(
        engine_, link.name + ".down", link.latency_s, link.bandwidth_Bps));
    up_lanes_.push_back(std::make_unique<sim::SharedLink>(
        engine_, link.name + ".up", link.latency_s, link.bandwidth_Bps));
  }
  ctx_.engine = &engine_;
  for (auto& l : down_lanes_) ctx_.down_links.push_back(l.get());
  for (auto& l : up_lanes_) ctx_.up_links.push_back(l.get());

  for (std::size_t i = 0; i < machine_.devices.size(); ++i) {
    if (!machine_.devices[i].is_host()) pool_.push_back(static_cast<int>(i));
  }
  if (pool_.empty()) {
    throw ConfigError("OffloadServer: machine '" + machine_.name +
                      "' has no accelerators to serve on");
  }
  devices_.resize(machine_.devices.size());

  std::set<std::string> names;
  for (auto& t : tenants) {
    if (t.name.empty()) throw ConfigError("tenant name must not be empty");
    if (!names.insert(t.name).second) {
      throw ConfigError("duplicate tenant name '" + t.name + "'");
    }
    if (!(t.weight > 0.0)) {
      throw ConfigError("tenant '" + t.name + "': weight must be > 0");
    }
    if (t.max_queue_depth == 0) {
      throw ConfigError("tenant '" + t.name + "': max_queue_depth must be >= 1");
    }
    t.fault.validate("tenant '" + t.name + "'");
    lowest_class_ = std::max(lowest_class_, static_cast<int>(t.priority));
    report_.tenants.push_back(t.name);
    report_.tenant_priority.push_back(t.priority);
    report_.counts.emplace_back();
    TenantState ts;
    ts.spec = std::move(t);
    tenants_.push_back(std::move(ts));
  }
}

OffloadServer::~OffloadServer() { engine_.cancel_generation(gen_); }

int OffloadServer::tenant_index(const std::string& name) const {
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].spec.name == name) return static_cast<int>(i);
  }
  throw ConfigError("unknown tenant '" + name + "'");
}

void OffloadServer::note_event(ServeEventKind kind, int tenant,
                               std::uint64_t job_id,
                               const std::string& detail) {
  ServeEvent e;
  e.time = engine_.now();
  e.kind = kind;
  e.job_id = job_id;
  e.detail = detail;
  if (tenant >= 0) {
    e.tenant = tenants_[tenant].spec.name;
    e.priority = tenants_[tenant].spec.priority;
  }
  report_.events.push_back(std::move(e));
}

std::size_t OffloadServer::backlog() const noexcept {
  std::size_t n = 0;
  for (const auto& ts : tenants_) n += ts.queue.size() + ts.vestibule.size();
  return n;
}

double OffloadServer::backlog_seconds() const noexcept {
  double s = active_pred_s_;
  for (const auto& ts : tenants_) s += ts.backlog_s;
  return s / static_cast<double>(pool_.size());
}

std::size_t OffloadServer::shed_threshold(int level) const noexcept {
  switch (level) {
    case 1: return opts_.shed_l1_depth;
    case 2: return opts_.shed_l2_depth;
    default: return opts_.shed_l3_depth;
  }
}

void OffloadServer::recompute_shed() {
  const auto depth = static_cast<double>(backlog());
  int lvl = shed_level_;
  while (lvl < 3 && depth >= static_cast<double>(shed_threshold(lvl + 1))) {
    ++lvl;
  }
  if (lvl == shed_level_) {
    // Hysteresis on the way down: leave level L only once the backlog
    // has drained well below the threshold that triggered it, so the
    // ladder does not flap at the boundary.
    while (lvl > 0 &&
           depth < opts_.shed_hysteresis *
                       static_cast<double>(shed_threshold(lvl))) {
      --lvl;
    }
  }
  if (lvl != shed_level_) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "L%d -> L%d (backlog %zu)", shed_level_,
                  lvl, backlog());
    note_event(ServeEventKind::kShedLevel, -1, 0, buf);
    ++report_.shed_transitions;
    shed_level_ = lvl;
    report_.final_shed_level = lvl;
  }
}

double OffloadServer::predicted_job_seconds(const std::string& kernel,
                                            long long n, int devices) const {
  const auto kcase = kern::make_case(kernel, n, /*materialize=*/false);
  const auto profile = kcase->paper_profile();
  const long long iters = kcase->kernel().iterations.size();

  // Fastest accelerators first, deterministic tie-break on id.
  std::vector<int> ids = pool_;
  std::sort(ids.begin(), ids.end(), [this](int a, int b) {
    const double fa = machine_.devices[a].sustained_flops();
    const double fb = machine_.devices[b].sustained_flops();
    if (fa != fb) return fa > fb;
    return a < b;
  });
  const auto k = static_cast<std::size_t>(
      std::max(1, std::min<int>(devices, static_cast<int>(ids.size()))));
  ids.resize(k);

  const auto inputs = model::prediction_inputs(machine_, ids);
  std::vector<double> iter_times;
  iter_times.reserve(inputs.size());
  for (const auto& in : inputs) {
    iter_times.push_back(model::model2_iter_time(profile, in));
  }
  const auto weights = model::model2_weights(profile, inputs);
  return model::predicted_completion_time(iters, weights, iter_times);
}

SubmitResult OffloadServer::submit(
    const std::string& tenant, const JobSpec& job,
    std::function<void(const JobRecord&)> on_done) {
  // One logical admission operation (dsan): same-instant arrivals
  // commute — WFQ order is derived from credits, not arrival interleave.
  HOMP_DSAN_WRITE(dsan_queues_);
  const int t = tenant_index(tenant);
  auto& ts = tenants_[t];
  auto& c = report_.counts[t];
  const double now = engine_.now();

  if (job.n <= 0) throw ConfigError("JobSpec::n must be positive");
  if (job.devices < 1) throw ConfigError("JobSpec::devices must be >= 1");
  if (job.deadline_s < 0.0) {
    throw ConfigError("JobSpec::deadline_s must be >= 0");
  }

  ++c.submitted;
  note_event(ServeEventKind::kSubmit, t, 0,
             job.kernel + "-" + std::to_string(job.n));

  SubmitResult r;

  // Shed level 3: the lowest class is refused at the door, before any
  // planning work is spent on it.
  if (shed_level_ >= 3 &&
      static_cast<int>(ts.spec.priority) == lowest_class_) {
    ++c.rejected_shed;
    r.outcome = AdmitOutcome::kRejectedShed;
    r.detail = "load shed (L3): lowest priority class rejected";
    note_event(ServeEventKind::kReject, t, 0, r.detail);
    return r;
  }

  // Circuit breaker: an open tenant is rejected with a retry-after hint;
  // once the cooldown elapses exactly one submission is admitted
  // half-open as a probe, and further submissions wait on its verdict.
  bool probe = false;
  if (opts_.breaker_threshold > 0 && ts.breaker_open) {
    if (now < ts.breaker_open_until || ts.probe_outstanding) {
      ++c.rejected_breaker;
      r.outcome = AdmitOutcome::kRejectedBreaker;
      r.retry_after_s = std::max(0.0, ts.breaker_open_until - now);
      r.detail = ts.probe_outstanding
                     ? "circuit breaker half-open: probe in flight"
                     : "circuit breaker open; retry after " +
                           format_seconds(r.retry_after_s);
      note_event(ServeEventKind::kReject, t, 0, r.detail);
      return r;
    }
    probe = true;
  }

  auto kcase = kern::make_case(job.kernel, job.n, opts_.materialize);
  const auto profile = kcase->paper_profile();
  const long long iters = kcase->kernel().iterations.size();
  const double total_bytes =
      profile.transfer_bytes_per_iter * static_cast<double>(iters);
  const int min_devices = std::max(
      1, static_cast<int>(std::ceil(total_bytes / opts_.device_mem_bytes)));
  if (min_devices > static_cast<int>(pool_.size())) {
    ++c.rejected_infeasible;
    r.outcome = AdmitOutcome::kRejectedInfeasible;
    r.detail = "needs " + std::to_string(min_devices) +
               " devices to fit memory; pool has " +
               std::to_string(pool_.size());
    note_event(ServeEventKind::kReject, t, 0, r.detail);
    return r;
  }

  const int want = std::max(
      min_devices, std::min(job.devices, static_cast<int>(pool_.size())));
  const double predicted = predicted_job_seconds(job.kernel, job.n, want);

  // Deadline admission: queue-wait estimate + MODEL_2-predicted run.
  if (job.deadline_s > 0.0) {
    const double est = backlog_seconds() + predicted;
    if (est > job.deadline_s) {
      ++c.rejected_deadline;
      r.outcome = AdmitOutcome::kRejectedDeadline;
      r.detail = "predicted completion " + format_seconds(est) +
                 " exceeds deadline " + format_seconds(job.deadline_s);
      note_event(ServeEventKind::kReject, t, 0, r.detail);
      return r;
    }
  }

  PendingJob pj;
  pj.spec = job;
  pj.kcase = std::move(kcase);
  pj.predicted_s = predicted;
  pj.total_bytes = total_bytes;
  pj.min_devices = min_devices;
  pj.submit_time = now;
  pj.on_done = std::move(on_done);

  // Bounded-queue backpressure.
  if (ts.queue.size() >= ts.spec.max_queue_depth) {
    if (ts.spec.backpressure == BackpressureMode::kReject) {
      ++c.rejected_queue_full;
      r.outcome = AdmitOutcome::kRejectedQueueFull;
      r.retry_after_s = std::max(
          predicted, ts.backlog_s / static_cast<double>(pool_.size()));
      r.detail = "queue full (" + std::to_string(ts.queue.size()) +
                 "); retry after " + format_seconds(r.retry_after_s);
      note_event(ServeEventKind::kReject, t, 0, r.detail);
      return r;
    }
    // kBlock: park in the vestibule; it enters the queue when a
    // dispatch opens room.
    pj.job_id = next_job_id_++;
    pj.vestibule_since = now;
    ++c.blocked;
    r.outcome = AdmitOutcome::kBlocked;
    r.job_id = pj.job_id;
    note_event(ServeEventKind::kBlock, t, pj.job_id,
               "queue full; parked in vestibule");
    if (probe) mark_probe(t, pj.job_id);
    arm_deadline(t, pj);
    ts.backlog_s += pj.predicted_s;
    ts.vestibule.push_back(std::move(pj));
    recompute_shed();
    return r;
  }

  pj.job_id = next_job_id_++;
  pj.enqueue_time = now;
  r.outcome = AdmitOutcome::kAdmitted;
  r.job_id = pj.job_id;
  ++c.admitted;
  note_event(ServeEventKind::kAdmit, t, pj.job_id,
             "predicted " + format_seconds(predicted));
  if (probe) mark_probe(t, pj.job_id);
  arm_deadline(t, pj);
  ts.backlog_s += pj.predicted_s;
  ts.queue.push_back(std::move(pj));
  recompute_shed();
  schedule_dispatch();
  return r;
}

void OffloadServer::mark_probe(int tenant, std::uint64_t job_id) {
  auto& ts = tenants_[tenant];
  ts.probe_outstanding = true;
  ts.probe_job_id = job_id;
  note_event(ServeEventKind::kBreakerProbe, tenant, job_id,
             "half-open: admitted as probation probe");
}

void OffloadServer::arm_deadline(int tenant, PendingJob& pj) {
  if (pj.spec.deadline_s <= 0.0) return;
  const std::uint64_t job_id = pj.job_id;
  pj.deadline_event = engine_.schedule_after(
      pj.spec.deadline_s,
      [this, tenant, job_id] { on_deadline(tenant, job_id); }, gen_);
}

void OffloadServer::schedule_dispatch() {
  if (dispatch_pending_) return;
  dispatch_pending_ = true;
  engine_.schedule_after(0.0, [this] { dispatch(); }, gen_);
}

int OffloadServer::pick_class() const {
  bool queued[kNumClasses] = {};
  for (const auto& ts : tenants_) {
    if (!ts.queue.empty()) queued[static_cast<int>(ts.spec.priority)] = true;
  }
  // Starvation floor: under saturation the lowest class still gets its
  // guaranteed fraction of dispatches, strict priority notwithstanding.
  if (queued[lowest_class_] && total_dispatches_ > 0 &&
      static_cast<double>(class_dispatches_[lowest_class_]) <
          opts_.floor_fraction * static_cast<double>(total_dispatches_)) {
    return lowest_class_;
  }
  for (int cls = 0; cls < kNumClasses; ++cls) {
    if (queued[cls]) return cls;
  }
  return -1;
}

int OffloadServer::pick_tenant(int cls) const {
  int best = -1;
  double best_key = 0.0;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const auto& ts = tenants_[i];
    if (static_cast<int>(ts.spec.priority) != cls || ts.queue.empty()) {
      continue;
    }
    const double key = ts.service / ts.spec.weight;
    if (best < 0 || key < best_key) {
      best = static_cast<int>(i);
      best_key = key;
    }
  }
  return best;
}

std::vector<int> OffloadServer::grant_devices(int want) const {
  std::vector<int> free;
  for (int id : pool_) {
    if (devices_[static_cast<std::size_t>(id)].holder == 0) {
      free.push_back(id);
    }
  }
  std::sort(free.begin(), free.end(), [this](int a, int b) {
    const double fa = machine_.devices[a].sustained_flops();
    const double fb = machine_.devices[b].sustained_flops();
    if (fa != fb) return fa > fb;
    return a < b;
  });
  if (static_cast<int>(free.size()) > want) free.resize(want);
  return free;
}

void OffloadServer::dispatch() {
  HOMP_DSAN_WRITE(dsan_queues_);
  HOMP_DSAN_WRITE(dsan_grants_);
  dispatch_pending_ = false;
  while (true) {
    const int cls = pick_class();
    if (cls < 0) return;
    const int t = pick_tenant(cls);
    auto& ts = tenants_[t];
    const PendingJob& head = ts.queue.front();

    int want = head.spec.devices;
    if (opts_.max_devices_per_job > 0) {
      want = std::min(want, opts_.max_devices_per_job);
    }
    if (shed_level_ >= 2) {
      want = std::min(want, std::max(1, opts_.shed_l2_device_cap));
    }
    want = std::max(want, head.min_devices);
    want = std::min(want, static_cast<int>(pool_.size()));

    const auto granted = grant_devices(want);
    if (static_cast<int>(granted.size()) < want) {
      // Strict head-of-line: no backfilling past a job that cannot
      // place, so a big high-priority job is never starved by a stream
      // of small low-priority ones. Devices freeing re-trigger dispatch.
      return;
    }

    PendingJob pj = std::move(ts.queue.front());
    ts.queue.pop_front();
    ++total_dispatches_;
    ++class_dispatches_[cls];
    place(t, std::move(pj), granted);
    promote_vestibule(t);
    recompute_shed();
  }
}

void OffloadServer::place(int tenant, PendingJob&& pj,
                          const std::vector<int>& devices) {
  HOMP_DSAN_WRITE(dsan_grants_);
  auto& ts = tenants_[tenant];
  const double now = engine_.now();

  auto aj = std::make_unique<ActiveJob>();
  aj->tenant = tenant;
  aj->kcase = std::move(pj.kcase);
  if (opts_.materialize) aj->kcase->init();
  aj->kernel = aj->kcase->kernel();
  aj->maps = aj->kcase->maps();
  aj->devices = devices;
  aj->footprint_per_dev =
      pj.total_bytes / static_cast<double>(devices.size());
  aj->deadline_event = pj.deadline_event;
  aj->on_done = std::move(pj.on_done);

  JobRecord& rec = aj->record;
  rec.job_id = pj.job_id;
  rec.tenant = ts.spec.name;
  rec.priority = ts.spec.priority;
  rec.kernel = pj.spec.kernel;
  rec.n = aj->kernel.iterations.size();
  rec.submit_time = pj.submit_time;
  rec.dispatch_time = now;
  rec.blocked_s = pj.blocked_s;
  rec.predicted_s = pj.predicted_s;
  rec.devices_granted = static_cast<int>(devices.size());
  rec.speculation_shed = shed_level_ >= 1;

  rt::OffloadOptions o = opts_.base;
  o.device_ids = devices;
  o.sched.kind = pj.spec.algorithm;
  o.execute_bodies = opts_.materialize;
  o.collect_trace = opts_.collect_trace;
  o.noise_seed = mix_seed(opts_.seed, pj.job_id);
  o.fault.seed = mix_seed(opts_.seed ^ 0x5eedfaull, pj.job_id);
  o.fault.extra = ts.spec.fault;
  if (shed_level_ >= 1) {
    // L1 shedding: strip speculative duplication — it buys tail latency
    // with extra device-seconds, exactly what an overloaded server
    // cannot spare.
    o.watchdog.speculation = false;
    ++report_.speculation_shed_jobs;
  }
  o.validate_or_throw();

  ts.service += pj.predicted_s * static_cast<double>(devices.size());
  ts.backlog_s = std::max(0.0, ts.backlog_s - pj.predicted_s);
  active_pred_s_ += pj.predicted_s;
  for (int id : devices) {
    auto& d = devices_[static_cast<std::size_t>(id)];
    d.holder = pj.job_id;
    d.mem_used += aj->footprint_per_dev;
  }

  {
    std::string detail = "devices";
    for (int id : devices) detail += " " + machine_.devices[id].name;
    if (shed_level_ >= 1) {
      detail += " (shed L" + std::to_string(shed_level_) + ")";
    }
    note_event(ServeEventKind::kDispatch, tenant, pj.job_id, detail);
  }

  aj->exec = std::make_unique<rt::OffloadExecution>(
      machine_, aj->kernel, aj->maps, o, nullptr, nullptr, &ctx_);
  ActiveJob* raw = aj.get();
  active_.push_back(std::move(aj));
  raw->exec->start([this, raw](rt::OffloadResult&& res) {
    on_job_done(raw, std::move(res));
  });
}

void OffloadServer::promote_vestibule(int tenant) {
  HOMP_DSAN_WRITE(dsan_queues_);
  auto& ts = tenants_[tenant];
  auto& c = report_.counts[tenant];
  const double now = engine_.now();
  while (!ts.vestibule.empty() &&
         ts.queue.size() < ts.spec.max_queue_depth) {
    PendingJob pj = std::move(ts.vestibule.front());
    ts.vestibule.pop_front();
    pj.blocked_s = now - pj.vestibule_since;
    pj.enqueue_time = now;
    ++c.admitted;
    note_event(ServeEventKind::kUnblock, tenant, pj.job_id,
               "waited " + format_seconds(pj.blocked_s));
    note_event(ServeEventKind::kAdmit, tenant, pj.job_id,
               "predicted " + format_seconds(pj.predicted_s));
    ts.queue.push_back(std::move(pj));
  }
}

void OffloadServer::on_job_done(ActiveJob* job, rt::OffloadResult&& res) {
  // Releases grants + memory accounting — one logical operation (dsan).
  HOMP_DSAN_WRITE(dsan_grants_);
  const double now = engine_.now();
  auto& c = report_.counts[job->tenant];

  // Resources come back whatever the outcome — fault containment means
  // a failed job's grants and memory never leak.
  if (job->deadline_event != 0) engine_.cancel(job->deadline_event);
  for (int id : job->devices) {
    auto& d = devices_[static_cast<std::size_t>(id)];
    d.holder = 0;
    d.mem_used = std::max(0.0, d.mem_used - job->footprint_per_dev);
  }
  active_pred_s_ = std::max(0.0, active_pred_s_ - job->record.predicted_s);

  JobRecord& rec = job->record;
  rec.finish_time = now;
  rec.iterations_done = res.total_iterations();
  if (opts_.collect_trace) rec.trace = std::move(res.trace);

  if (res.failed) {
    rec.ok = false;
    rec.outcome = JobOutcome::kFail;
    rec.error_class = fail_class_name(res.fail_class);
    rec.error = res.error;
    ++c.failed;
    note_event(ServeEventKind::kFail, job->tenant, rec.job_id,
               rec.error_class + ": " + rec.error);
    note_job_failure(job->tenant, rec.job_id);
  } else if (res.cancelled) {
    rec.ok = false;
    rec.outcome = JobOutcome::kCancelled;
    rec.error_class = fail_class_name(res.fail_class);
    rec.error = res.error;
    ++c.cancelled;
    note_event(ServeEventKind::kCancel, job->tenant, rec.job_id,
               rec.error_class + ": " + rec.error);
    // Cancellation is the server revoking its own admission, not the
    // tenant misbehaving — it neither feeds nor resets the breaker.
    auto& ts = tenants_[job->tenant];
    if (ts.probe_outstanding && ts.probe_job_id == rec.job_id) {
      ts.probe_outstanding = false;
    }
  } else {
    rec.ok = true;
    // Conservation is the serving layer's prime invariant: shedding and
    // backpressure may delay or refuse a job, never shrink its answer.
    if (rec.iterations_done != rec.n) {
      report_.violations.push_back(
          "job " + std::to_string(rec.job_id) + " (" + rec.tenant +
          "): committed " + std::to_string(rec.iterations_done) + " of " +
          std::to_string(rec.n) + " iterations");
    }
    std::string why;
    if (opts_.materialize && !job->kcase->verify(&why)) {
      // Wrong answer at materialization is an unrecoverable job error,
      // contained like any other: terminal kFail, class "validation".
      rec.ok = false;
      rec.outcome = JobOutcome::kFail;
      rec.error_class = fail_class_name(FailClass::kValidation);
      rec.error = "wrong result: " + why;
      ++c.failed;
      note_event(ServeEventKind::kFail, job->tenant, rec.job_id,
                 rec.error_class + ": " + rec.error);
      note_job_failure(job->tenant, rec.job_id);
    } else {
      ++c.completed;
      c.iterations += rec.iterations_done;
      note_event(ServeEventKind::kComplete, job->tenant, rec.job_id,
                 "latency " + format_seconds(rec.latency()));
      note_job_success(job->tenant, rec.job_id);
    }
  }
  report_.jobs.push_back(rec);

  // Destroy the job in place: the execution's finished generation holds
  // no timers (cancelled wholesale at completion), so nothing dangles.
  auto done = std::move(job->on_done);
  auto it = std::find_if(
      active_.begin(), active_.end(),
      [job](const std::unique_ptr<ActiveJob>& p) { return p.get() == job; });
  if (it != active_.end()) active_.erase(it);

  if (done) done(report_.jobs.back());
  schedule_dispatch();
}

void OffloadServer::on_deadline(int tenant, std::uint64_t job_id) {
  HOMP_DSAN_WRITE(dsan_queues_);
  auto& ts = tenants_[tenant];
  const double now = engine_.now();

  for (auto it = ts.queue.begin(); it != ts.queue.end(); ++it) {
    if (it->job_id != job_id) continue;
    PendingJob pj = std::move(*it);
    ts.queue.erase(it);
    ts.backlog_s = std::max(0.0, ts.backlog_s - pj.predicted_s);
    cancel_pending(tenant, std::move(pj),
                   "admitted deadline expired while queued");
    recompute_shed();
    schedule_dispatch();
    return;
  }

  for (auto it = ts.vestibule.begin(); it != ts.vestibule.end(); ++it) {
    if (it->job_id != job_id) continue;
    PendingJob pj = std::move(*it);
    ts.vestibule.erase(it);
    ts.backlog_s = std::max(0.0, ts.backlog_s - pj.predicted_s);
    // Promote-then-terminate: the job formally enters the queue (admit
    // accounting, FIFO position) before its terminal record, so the
    // per-tenant FIFO and accounting invariants hold unchanged.
    pj.blocked_s = now - pj.vestibule_since;
    pj.enqueue_time = now;
    ++report_.counts[tenant].admitted;
    note_event(ServeEventKind::kUnblock, tenant, pj.job_id,
               "waited " + format_seconds(pj.blocked_s));
    note_event(ServeEventKind::kAdmit, tenant, pj.job_id,
               "predicted " + format_seconds(pj.predicted_s));
    cancel_pending(tenant, std::move(pj),
                   "admitted deadline expired in the vestibule");
    recompute_shed();
    schedule_dispatch();
    return;
  }

  for (auto& aj : active_) {
    if (aj->record.job_id != job_id) continue;
    aj->exec->request_cancel(FailClass::kDeadlineMiss,
                             "admitted deadline exceeded mid-run");
    return;
  }
  // Already terminal: its completion cancelled this timer, so a fire
  // here can only race a same-instant event — nothing to do.
}

void OffloadServer::cancel_pending(int tenant, PendingJob&& pj,
                                   const std::string& why) {
  auto& ts = tenants_[tenant];
  auto& c = report_.counts[tenant];
  const double now = engine_.now();

  JobRecord rec;
  rec.job_id = pj.job_id;
  rec.tenant = ts.spec.name;
  rec.priority = ts.spec.priority;
  rec.kernel = pj.spec.kernel;
  rec.n = static_cast<long long>(pj.kcase->kernel().iterations.size());
  rec.submit_time = pj.submit_time;
  rec.dispatch_time = now;
  rec.finish_time = now;
  rec.blocked_s = pj.blocked_s;
  rec.predicted_s = pj.predicted_s;
  rec.ok = false;
  rec.outcome = JobOutcome::kCancelled;
  rec.error_class = fail_class_name(FailClass::kDeadlineMiss);
  rec.error = why;
  ++c.cancelled;
  note_event(ServeEventKind::kCancel, tenant, pj.job_id,
             rec.error_class + ": " + why);
  report_.jobs.push_back(std::move(rec));

  if (ts.probe_outstanding && ts.probe_job_id == pj.job_id) {
    ts.probe_outstanding = false;
  }
  auto done = std::move(pj.on_done);
  if (done) done(report_.jobs.back());
}

void OffloadServer::note_job_failure(int tenant, std::uint64_t job_id) {
  if (opts_.breaker_threshold <= 0) return;
  auto& ts = tenants_[tenant];
  const bool was_probe = ts.probe_outstanding && ts.probe_job_id == job_id;
  if (was_probe) ts.probe_outstanding = false;
  if (ts.breaker_open) {
    // Only the probe's verdict moves an open breaker; a straggler from
    // before the trip changes nothing.
    if (was_probe) trip_breaker(tenant);
    return;
  }
  if (++ts.consecutive_failures >= opts_.breaker_threshold) {
    ts.consecutive_failures = 0;
    trip_breaker(tenant);
  }
}

void OffloadServer::note_job_success(int tenant, std::uint64_t job_id) {
  if (opts_.breaker_threshold <= 0) return;
  auto& ts = tenants_[tenant];
  const bool was_probe = ts.probe_outstanding && ts.probe_job_id == job_id;
  if (was_probe) ts.probe_outstanding = false;
  ts.consecutive_failures = 0;
  if (ts.breaker_open) {
    ts.breaker_open = false;
    note_event(ServeEventKind::kBreakerClose, tenant, job_id,
               was_probe ? "probe succeeded" : "job succeeded");
  }
}

void OffloadServer::trip_breaker(int tenant) {
  auto& ts = tenants_[tenant];
  ++ts.breaker_trips;
  ++report_.counts[tenant].breaker_trips;
  const double cooldown = std::min(
      opts_.breaker_cooldown_cap_s,
      opts_.breaker_cooldown_base_s *
          std::pow(opts_.breaker_cooldown_growth,
                   static_cast<double>(ts.breaker_trips - 1)));
  ts.breaker_open = true;
  ts.breaker_open_until = engine_.now() + cooldown;
  ts.probe_outstanding = false;
  note_event(ServeEventKind::kBreakerOpen, tenant, 0,
             "trip " + std::to_string(ts.breaker_trips) + "; cooldown " +
                 format_seconds(cooldown));
}

void OffloadServer::run() {
  schedule_dispatch();
  engine_.run();
  report_.makespan_s = engine_.now();
  report_.final_shed_level = shed_level_;
}

}  // namespace homp::serve
