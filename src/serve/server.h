#ifndef HOMP_SERVE_SERVER_H
#define HOMP_SERVE_SERVER_H

/// \file server.h
/// Multi-tenant offload server (docs/SERVING.md): N independent offload
/// executions run *concurrently* on one shared discrete-event engine,
/// contending for the machine's devices and PCIe links.
///
/// The control plane stacks four mechanisms, outermost first:
///
///  1. Admission: per-tenant bounded queues. A full queue either rejects
///     with a retry-after hint or parks the submission in an unbounded
///     vestibule (TenantSpec::backpressure). Jobs carrying a deadline are
///     rejected at the door when backlog + MODEL_2-predicted run time
///     already exceeds it; jobs whose data cannot fit device memory on
///     any feasible device count are rejected as infeasible.
///  2. Scheduling: strict priority across classes (gold > silver >
///     bronze) with a starvation floor for the lowest class, and
///     weighted-fair queueing across tenants inside a class (credits in
///     MODEL_2-predicted device-seconds).
///  3. Placement: jobs take whole devices (exclusive), fastest free
///     accelerators first, with per-device memory accounting.
///  4. Load shedding: a three-level ladder driven by total backlog —
///     L1 strips speculation from dispatched jobs, L2 caps per-job
///     device grants, L3 rejects the lowest class at submit. Transitions
///     apply hysteresis and every one is recorded in the decision audit.
///
/// Jobs are failure domains (docs/SERVING.md "Job failure domains"): an
/// unrecoverable error inside one execution is contained by the runtime
/// and surfaces here as a terminal kFail record — devices and memory are
/// reclaimed and every other tenant keeps running. Consecutive failures
/// trip a per-tenant circuit breaker that rejects at admission with a
/// retry-after hint and re-admits through probation probe jobs under
/// exponential cooldown. Jobs carrying a deadline get a cancellable
/// timer: blowing the admitted deadline mid-run cancels the execution
/// cooperatively (terminal kCancelled record, class "deadline_miss").
///
/// Everything runs in virtual time on the shared engine; a same-seed run
/// reproduces the identical event sequence, report and summary JSON.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "machine/device.h"
#include "runtime/exec_context.h"
#include "runtime/options.h"
#include "serve/report.h"
#include "serve/tenant.h"
#include "sim/engine.h"
#include "sim/link.h"

namespace homp::kern {
class KernelCase;
}

namespace homp::rt {
class OffloadExecution;
}

namespace homp::serve {

struct ServeOptions {
  /// Per-accelerator device-memory capacity, bytes. The machine
  /// description has no capacity field (the paper's machines never
  /// filled one), so serving supplies it.
  double device_mem_bytes = 8e9;

  /// Hard cap on devices granted to one job; 0 = no cap beyond the
  /// job's own request.
  int max_devices_per_job = 0;

  /// Shed ladder thresholds on total backlog (queued + vestibule jobs),
  /// and the hysteresis factor for climbing back down: level L is left
  /// only once backlog < shed_hysteresis * threshold(L).
  std::size_t shed_l1_depth = 8;
  std::size_t shed_l2_depth = 16;
  std::size_t shed_l3_depth = 24;
  double shed_hysteresis = 0.5;

  /// At shed level >= 2, per-job device grants are capped at this.
  int shed_l2_device_cap = 1;

  /// Guaranteed dispatch share of the lowest priority class present:
  /// under saturation it receives at least this fraction of dispatches
  /// even while higher classes queue.
  double floor_fraction = 0.1;

  /// Per-tenant circuit breaker: this many *consecutive* terminal kFail
  /// records trip the tenant open (submissions rejected with a
  /// retry-after hint); 0 disables the breaker. Re-admission mirrors the
  /// device-quarantine pattern: after the cooldown one probe job is
  /// admitted half-open — success closes the breaker, failure re-opens
  /// it with the cooldown grown by `breaker_cooldown_growth` (capped).
  int breaker_threshold = 3;
  double breaker_cooldown_base_s = 1.0;
  double breaker_cooldown_growth = 2.0;
  double breaker_cooldown_cap_s = 60.0;

  /// Materialize kernel cases and execute bodies (small-n tests that
  /// verify results); off = pure simulation at paper scale.
  bool materialize = false;

  /// Collect per-job chrome-trace spans into the report.
  bool collect_trace = false;

  /// Root seed; per-job noise/fault seeds derive from it + the job id.
  std::uint64_t seed = 0x5e12e;

  /// Template for every job's OffloadOptions (fault retry budgets,
  /// watchdog tuning, ...). device_ids / sched.kind / seeds / trace
  /// flags are overridden per job.
  rt::OffloadOptions base;
};

/// See file comment. Construction wires the shared engine + link lanes;
/// submit() enqueues work; run() drains the engine; report() afterwards
/// holds every record. A finished job's execution is destroyed on the
/// spot: every timer it armed carries its generation tag, cancelled
/// wholesale at completion, so no tombstone state outlives the job and
/// a drained server retains zero job objects (see retained_jobs()).
class OffloadServer {
 public:
  OffloadServer(mach::MachineDescriptor machine,
                std::vector<TenantSpec> tenants, ServeOptions opts = {});
  ~OffloadServer();

  OffloadServer(const OffloadServer&) = delete;
  OffloadServer& operator=(const OffloadServer&) = delete;

  /// Submit one job for `tenant` (by name). Safe both before run() and
  /// from inside engine callbacks (the traffic generator's arrivals).
  /// `on_done` fires after the server's own completion bookkeeping.
  SubmitResult submit(const std::string& tenant, const JobSpec& job,
                      std::function<void(const JobRecord&)> on_done = {});

  /// Drain the shared engine: runs every admitted job to a terminal
  /// state (plus whatever the traffic generator keeps injecting), then
  /// finalizes the report. Unrecoverable per-job errors never escape —
  /// they are contained to kFail records (docs/SERVING.md).
  void run();

  /// The shared engine — the traffic generator schedules arrivals on it.
  sim::Engine& engine() noexcept { return engine_; }

  const mach::MachineDescriptor& machine() const noexcept { return machine_; }

  /// Accelerator ids (the grantable pool; the host stays out of it).
  const std::vector<int>& pool() const noexcept { return pool_; }

  int shed_level() const noexcept { return shed_level_; }

  /// Total backlog: queued + vestibule-parked jobs.
  std::size_t backlog() const noexcept;

  /// MODEL_2-predicted run time of (kernel, n) on the `devices` fastest
  /// accelerators — the estimate admission and WFQ credits use.
  double predicted_job_seconds(const std::string& kernel, long long n,
                               int devices) const;

  /// Run records so far; complete after run() returns.
  const ServeReport& report() const noexcept { return report_; }

  /// Job objects still held by the server — the in-flight set. Zero
  /// after a drained run(): finished jobs are destroyed immediately
  /// (memory-flatness invariant the soak bench and chaos harness check).
  std::size_t retained_jobs() const noexcept { return active_.size(); }

 private:
  struct PendingJob;
  struct ActiveJob;
  struct DeviceState;
  struct TenantState;

  int tenant_index(const std::string& name) const;
  void note_event(ServeEventKind kind, int tenant, std::uint64_t job_id,
                  const std::string& detail);
  /// Queue-drain estimate feeding deadline admission and retry-after.
  double backlog_seconds() const noexcept;
  void recompute_shed();
  std::size_t shed_threshold(int level) const noexcept;
  void schedule_dispatch();
  void dispatch();
  /// Class to serve next (floor override first); -1 when all queues are
  /// empty.
  int pick_class() const;
  /// WFQ pick among the class's tenants with queued work.
  int pick_tenant(int cls) const;
  /// Fastest free accelerators, up to `want`; deterministic order.
  std::vector<int> grant_devices(int want) const;
  void place(int tenant, PendingJob&& pj, const std::vector<int>& devices);
  void promote_vestibule(int tenant);
  void on_job_done(ActiveJob* job, rt::OffloadResult&& res);
  /// Mark an admitted job as the tenant's half-open breaker probe.
  void mark_probe(int tenant, std::uint64_t job_id);
  /// Arm the cancellable admitted-deadline timer for an accepted job.
  void arm_deadline(int tenant, PendingJob& pj);
  /// Admitted-deadline timer fired: terminate the job wherever it is
  /// (queue, vestibule, or mid-run via cooperative cancellation).
  void on_deadline(int tenant, std::uint64_t job_id);
  /// Terminal kCancelled record for a job that never dispatched.
  void cancel_pending(int tenant, PendingJob&& pj, const std::string& why);
  /// Breaker bookkeeping on a terminal record (kFail feeds the trip
  /// counter; any completion closes an open breaker).
  void note_job_failure(int tenant, std::uint64_t job_id);
  void note_job_success(int tenant, std::uint64_t job_id);
  void trip_breaker(int tenant);

  mach::MachineDescriptor machine_;
  ServeOptions opts_;
  sim::Engine engine_;
  std::vector<std::unique_ptr<sim::SharedLink>> down_lanes_, up_lanes_;
  rt::ExecContext ctx_;

  /// deque: TenantState holds move-only queues, and deque growth never
  /// relocates (vector would instantiate a copy on reallocation).
  std::deque<TenantState> tenants_;
  std::vector<int> pool_;  ///< accelerator device ids
  std::vector<DeviceState> devices_;  ///< parallel to machine_.devices

  int shed_level_ = 0;
  int lowest_class_ = 0;  ///< lowest priority value present (largest enum)
  bool dispatch_pending_ = false;
  std::uint64_t next_job_id_ = 1;
  std::size_t total_dispatches_ = 0;
  std::size_t class_dispatches_[kNumClasses] = {};
  double active_pred_s_ = 0.0;  ///< predicted seconds of running jobs

  std::vector<std::unique_ptr<ActiveJob>> active_;

  /// Generation tag for every timer the server itself arms (dispatch
  /// kicks, deadline timers); the destructor cancels the lot.
  sim::Engine::GenTag gen_ = 0;

#if HOMP_DSAN_ENABLED
  /// dsan cells (docs/DETERMINISM.md). Queue mutations (submit, promote,
  /// deadline cancel) and grant/accounting mutations (place, release)
  /// commute: WFQ picks and device grants are re-derived from the full
  /// state at dispatch time in canonical order, not from arrival
  /// interleaving within a timestamp.
  sim::dsan::Cell dsan_queues_{"serve/queues",
                               sim::dsan::CellKind::kCommutative};
  sim::dsan::Cell dsan_grants_{"serve/grants",
                               sim::dsan::CellKind::kCommutative};
#endif

  ServeReport report_;
};

}  // namespace homp::serve

#endif  // HOMP_SERVE_SERVER_H
