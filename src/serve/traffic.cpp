#include "serve/traffic.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace homp::serve {

TrafficGen::TrafficGen(OffloadServer& server, std::vector<TenantLoad> loads)
    : server_(server) {
  if (loads.empty()) throw ConfigError("TrafficGen needs at least one load");
  for (auto& l : loads) {
    if (l.size_min <= 0 || l.size_max < l.size_min) {
      throw ConfigError("TenantLoad sizes must satisfy 0 < size_min <= size_max");
    }
    if (!(l.tail_alpha > 0.0)) {
      throw ConfigError("TenantLoad::tail_alpha must be > 0");
    }
    if (!l.closed_loop && !(l.arrival_rate_hz > 0.0)) {
      throw ConfigError("open-loop TenantLoad needs arrival_rate_hz > 0");
    }
    if (l.closed_loop && l.population < 1) {
      throw ConfigError("closed-loop TenantLoad needs population >= 1");
    }
    Stream s{l, Prng(l.seed), 0};
    streams_.push_back(std::move(s));
  }
  gen_ = server_.engine().new_generation();
}

long long TrafficGen::draw_size(Stream& s) {
  const auto& l = s.load;
  if (l.size_min == l.size_max) return l.size_min;
  // Bounded Pareto on [size_min, size_max] with tail index alpha:
  // inverse-CDF of the truncated power law.
  const double xm = static_cast<double>(l.size_min);
  const double xM = static_cast<double>(l.size_max);
  const double a = l.tail_alpha;
  const double u = s.prng.next_double();
  const double x =
      xm / std::pow(1.0 - u * (1.0 - std::pow(xm / xM, a)), 1.0 / a);
  return std::clamp(static_cast<long long>(x), l.size_min, l.size_max);
}

double TrafficGen::draw_interarrival(Stream& s) {
  // Exponential interarrivals -> Poisson process.
  const double u = s.prng.next_double();
  return -std::log(1.0 - u) / s.load.arrival_rate_hz;
}

void TrafficGen::start() {
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    auto& s = streams_[i];
    if (s.load.closed_loop) {
      // Stagger the initial population by one engine tick each so the
      // opening dispatch order is well-defined but effectively
      // simultaneous.
      for (int p = 0; p < s.load.population; ++p) {
        server_.engine().schedule_after(
            0.0, [this, i] { closed_submit(i); }, gen_);
      }
    } else {
      const double dt = draw_interarrival(s);
      server_.engine().schedule_after(dt, [this, i] { open_arrival(i); },
                                      gen_);
    }
  }
}

void TrafficGen::open_arrival(std::size_t idx) {
  auto& s = streams_[idx];
  const double now = server_.engine().now();
  if (now > s.load.duration_s ||
      (s.load.max_jobs > 0 && s.sent >= s.load.max_jobs)) {
    return;
  }
  JobSpec job = s.load.job;
  job.n = draw_size(s);
  ++s.sent;
  ++submitted_;
  // Open loop: rejections are dropped — shed/reject counts under
  // overload are precisely the signal bench_traffic measures.
  server_.submit(s.load.tenant.name, job);
  const double dt = draw_interarrival(s);
  server_.engine().schedule_after(dt, [this, idx] { open_arrival(idx); },
                                  gen_);
}

void TrafficGen::closed_submit(std::size_t idx) {
  auto& s = streams_[idx];
  const double now = server_.engine().now();
  if (now > s.load.duration_s ||
      (s.load.max_jobs > 0 && s.sent >= s.load.max_jobs)) {
    return;
  }
  JobSpec job = s.load.job;
  job.n = draw_size(s);
  ++s.sent;
  ++submitted_;
  const SubmitResult r = server_.submit(
      s.load.tenant.name, job,
      [this, idx](const JobRecord&) {
        const double think = streams_[idx].load.think_s;
        server_.engine().schedule_after(
            std::max(think, 0.0), [this, idx] { closed_submit(idx); }, gen_);
      });
  if (!r.accepted()) {
    // Back off and re-offer: a closed-loop client keeps its population
    // constant, honouring the server's retry-after hint.
    const double wait =
        std::max({s.load.think_s, r.retry_after_s, 1e-4});
    server_.engine().schedule_after(
        wait, [this, idx] { closed_submit(idx); }, gen_);
  }
}

}  // namespace homp::serve
