#ifndef HOMP_SERVE_REPORT_H
#define HOMP_SERVE_REPORT_H

/// \file report.h
/// Per-job records, invariant validation, metrics export and the
/// deterministic summary/trace exporters of the multi-tenant offload
/// server (docs/SERVING.md).
///
/// Everything here is virtual-time only and deterministically ordered,
/// so two same-seed serving runs produce byte-identical summary JSON —
/// the property bench_traffic commits to BENCH_traffic.json and CI
/// re-checks.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "runtime/options.h"
#include "serve/tenant.h"

namespace homp::serve {

/// Terminal state of a job record (docs/SERVING.md "Job failure
/// domains"). kFail marks an unrecoverable error contained to the job;
/// kCancelled marks a cooperative revocation (admitted-deadline miss, or
/// a job terminated straight out of the queue/vestibule).
enum class JobOutcome {
  kCompleted = 0,
  kFail,
  kCancelled,
};

const char* to_string(JobOutcome o) noexcept;

/// One job's life, submit to finish. All times are absolute virtual
/// seconds on the server's shared engine.
struct JobRecord {
  std::uint64_t job_id = 0;
  std::string tenant;
  PriorityClass priority = PriorityClass::kSilver;
  std::string kernel;
  long long n = 0;

  double submit_time = 0.0;
  double dispatch_time = 0.0;
  double finish_time = 0.0;
  /// Virtual seconds spent parked in the vestibule (kBlock backpressure)
  /// before entering the bounded queue; included in queue_wait().
  double blocked_s = 0.0;

  /// MODEL_2-predicted run time at admission (fastest eligible devices).
  double predicted_s = 0.0;

  int devices_granted = 0;
  long long iterations_done = 0;
  /// Dispatched at shed level >= 1: speculation was stripped.
  bool speculation_shed = false;
  bool ok = false;  ///< outcome == kCompleted (kept for convenience)

  JobOutcome outcome = JobOutcome::kCompleted;
  /// fail_class_name() of the contained error / cancellation reason
  /// ("quorum_exhausted", "deadline_miss", ...); empty when completed.
  std::string error_class;
  std::string error;  ///< human-readable cause; empty when completed

  /// Per-activity spans of the offload (ServeOptions::collect_trace).
  std::vector<rt::TraceSpan> trace;

  double latency() const noexcept { return finish_time - submit_time; }
  double queue_wait() const noexcept { return dispatch_time - submit_time; }
};

/// Per-tenant admission/completion counters, maintained by the server.
struct TenantCounts {
  std::size_t submitted = 0;
  std::size_t admitted = 0;
  std::size_t blocked = 0;  ///< submissions that went through the vestibule
  std::size_t rejected_queue_full = 0;
  std::size_t rejected_deadline = 0;
  std::size_t rejected_shed = 0;
  std::size_t rejected_infeasible = 0;
  std::size_t rejected_breaker = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;     ///< terminal kFail records
  std::size_t cancelled = 0;  ///< terminal kCancelled records
  std::size_t breaker_trips = 0;
  long long iterations = 0;

  std::size_t rejected() const noexcept {
    return rejected_queue_full + rejected_deadline + rejected_shed +
           rejected_infeasible + rejected_breaker;
  }
};

/// Everything one serving run produced. Filled by OffloadServer; the
/// exporters below are pure functions of it.
struct ServeReport {
  /// Tenant names, in server tenant-index order.
  std::vector<std::string> tenants;
  std::vector<PriorityClass> tenant_priority;
  std::vector<TenantCounts> counts;  ///< parallel to `tenants`

  /// Completed/failed jobs, in completion order.
  std::vector<JobRecord> jobs;

  /// Decision audit: every admission verdict, dispatch, completion and
  /// shed transition, in virtual-time order.
  std::vector<ServeEvent> events;

  double makespan_s = 0.0;  ///< engine time when the run drained
  int final_shed_level = 0;
  std::size_t shed_transitions = 0;
  std::size_t speculation_shed_jobs = 0;

  /// Invariant violations observed by the server while running
  /// (conservation breaches etc.). validate() appends to a copy.
  std::vector<std::string> violations;

  /// Exact percentile (nearest-rank) over completed-job latencies,
  /// optionally restricted to one priority class (pass nullptr for all).
  double latency_percentile(double q, const PriorityClass* cls) const;

  /// Re-derive the run invariants from the records and return every
  /// breach found, appended to the server-observed `violations`:
  ///  - iteration conservation: every completed job ran exactly its n
  ///  - per-tenant FIFO: dispatch order matches queue-entry order
  ///  - audit monotonicity: event times never go backwards
  ///  - accounting: admitted == completed + failed + cancelled for a
  ///    drained run, and every kFail/kCancelled record carries a class
  std::vector<std::string> validate() const;

  /// Export tenant-labelled serving metrics into `reg`
  /// (docs/OBSERVABILITY.md naming; see obs/metric_names.h).
  void export_metrics(obs::MetricsRegistry& reg) const;

  /// Deterministic summary JSON (schema "homp-serve-report-v2"):
  /// per-class and per-tenant p50/p99 latency, goodput, admission
  /// counts, shed-ladder summary and violations. Byte-identical across
  /// same-seed runs.
  void write_summary_json(std::ostream& os) const;

  /// Deterministic JSON export of the serve decision audit (`events`)
  /// with the run header and per-tenant counters — the serving-side
  /// input of the offline advisor (src/advise: shed-ladder pressure and
  /// per-tenant breaker attribution). Schema version rides in
  /// "homp_serve_audit_version" so homp-advise can sniff the artifact
  /// kind. Byte-identical across same-seed runs.
  void write_audit_json(std::ostream& os) const;

  /// Combined chrome://tracing export of every job's spans: one trace
  /// "process" per tenant (pid = tenant index + 1, named via
  /// process_name metadata), one "thread" per (job, device slot), plus
  /// the serve decision audit as instant events. Times are absolute, so
  /// concurrent jobs interleave on the timeline.
  void write_trace_json(std::ostream& os) const;
};

}  // namespace homp::serve

#endif  // HOMP_SERVE_REPORT_H
