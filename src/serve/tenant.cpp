#include "serve/tenant.h"

namespace homp::serve {

const char* to_string(PriorityClass c) noexcept {
  switch (c) {
    case PriorityClass::kGold: return "gold";
    case PriorityClass::kSilver: return "silver";
    case PriorityClass::kBronze: return "bronze";
  }
  return "?";
}

const char* to_string(BackpressureMode m) noexcept {
  switch (m) {
    case BackpressureMode::kReject: return "reject";
    case BackpressureMode::kBlock: return "block";
  }
  return "?";
}

const char* to_string(AdmitOutcome o) noexcept {
  switch (o) {
    case AdmitOutcome::kAdmitted: return "admitted";
    case AdmitOutcome::kBlocked: return "blocked";
    case AdmitOutcome::kRejectedQueueFull: return "queue-full";
    case AdmitOutcome::kRejectedDeadline: return "deadline";
    case AdmitOutcome::kRejectedShed: return "shed";
    case AdmitOutcome::kRejectedInfeasible: return "infeasible";
    case AdmitOutcome::kRejectedBreaker: return "breaker";
  }
  return "?";
}

const char* to_string(ServeEventKind k) noexcept {
  switch (k) {
    case ServeEventKind::kSubmit: return "submit";
    case ServeEventKind::kAdmit: return "admit";
    case ServeEventKind::kReject: return "reject";
    case ServeEventKind::kBlock: return "block";
    case ServeEventKind::kUnblock: return "unblock";
    case ServeEventKind::kDispatch: return "dispatch";
    case ServeEventKind::kComplete: return "complete";
    case ServeEventKind::kFail: return "fail";
    case ServeEventKind::kCancel: return "cancel";
    case ServeEventKind::kShedLevel: return "shed-level";
    case ServeEventKind::kBreakerOpen: return "breaker-open";
    case ServeEventKind::kBreakerProbe: return "breaker-probe";
    case ServeEventKind::kBreakerClose: return "breaker-close";
  }
  return "?";
}

}  // namespace homp::serve
