#include "capi/homp.h"

#include <functional>
#include <map>
#include <string>

#include "common/error.h"
#include "machine/profiles.h"
#include "pragma/parse.h"
#include "runtime/runtime.h"

namespace homp::capi {

namespace {

thread_local std::string g_last_error;

/// The data environment of the chunk whose body is currently executing.
/// The engine is single-threaded, so one slot suffices; set around the
/// body call in the kernel adapter below.
thread_local const mem::DeviceDataEnv* g_current_env = nullptr;

int fail(int code, const std::string& what) {
  g_last_error = what;
  return code;
}

int guard(const std::function<int()>& fn) {
  try {
    return fn();
  } catch (const ParseError& e) {
    return fail(HOMP_ERR_PARSE, e.what());
  } catch (const ExecutionError& e) {
    return fail(HOMP_ERR_EXEC, e.what());
  } catch (const Error& e) {
    return fail(HOMP_ERR_INVALID, e.what());
  } catch (const std::bad_alloc&) {
    return fail(HOMP_ERR_NOMEM, "out of memory");
  } catch (const std::exception& e) {
    return fail(HOMP_ERR_INVALID, e.what());
  }
}

}  // namespace

struct homp_runtime_opaque {
  rt::Runtime runtime;
  pragma::Bindings bindings;
  /// Keeps registered arrays' shapes; storage stays caller-owned.
  std::map<std::string, std::pair<long long, long long>> shapes;
};

const char* homp_last_error() { return g_last_error.c_str(); }

int homp_init(const char* machine, homp_runtime_t* out) {
  return guard([&] {
    HOMP_REQUIRE(machine != nullptr && out != nullptr,
                 "homp_init: null argument");
    const std::string name(machine);
    bool is_builtin = false;
    for (const auto& b : mach::builtin_machine_names()) {
      if (b == name) is_builtin = true;
    }
    auto rt = is_builtin ? rt::Runtime::from_builtin(name)
                         : rt::Runtime::from_machine_file(name);
    *out = new homp_runtime_opaque{std::move(rt), {}, {}};
    return HOMP_OK;
  });
}

int homp_fini(homp_runtime_t rt) {
  if (rt == nullptr) return fail(HOMP_ERR_INVALID, "homp_fini: null handle");
  delete rt;
  return HOMP_OK;
}

int homp_num_devices(homp_runtime_t rt) {
  if (rt == nullptr) {
    return fail(HOMP_ERR_INVALID, "homp_num_devices: null handle");
  }
  return rt->runtime.num_devices();
}

int homp_register_array(homp_runtime_t rt, const char* name, double* data,
                        long long n0, long long n1) {
  return guard([&] {
    HOMP_REQUIRE(rt != nullptr && name != nullptr && data != nullptr,
                 "homp_register_array: null argument");
    HOMP_REQUIRE(n0 > 0 && n1 >= 0, "homp_register_array: bad extents");
    mem::ArrayBinding b;
    b.base = data;
    b.elem_size = sizeof(double);
    b.shape = n1 > 0 ? std::vector<long long>{n0, n1}
                     : std::vector<long long>{n0};
    b.strides = n1 > 0 ? std::vector<long long>{n1, 1}
                       : std::vector<long long>{1};
    rt->bindings.arrays[name] = std::move(b);
    rt->shapes[name] = {n0, n1};
    return HOMP_OK;
  });
}

int homp_let(homp_runtime_t rt, const char* name, long long value) {
  return guard([&] {
    HOMP_REQUIRE(rt != nullptr && name != nullptr, "homp_let: null argument");
    rt->bindings.let(name, value);
    return HOMP_OK;
  });
}

int homp_offload(homp_runtime_t rt, const char* directive,
                 const homp_kernel_desc* kernel, homp_result* out) {
  return guard([&] {
    HOMP_REQUIRE(rt != nullptr && directive != nullptr && kernel != nullptr,
                 "homp_offload: null argument");
    auto parsed = pragma::parse_directive(directive);
    HOMP_REQUIRE(parsed.kind == pragma::ParsedDirective::Kind::kTarget,
                 "homp_offload expects a target directive");
    auto maps = pragma::build_map_specs(parsed, rt->bindings);
    auto opts = pragma::to_offload_options(parsed, rt->runtime.machine());
    opts.execute_bodies = kernel->execute_bodies != 0;

    rt::LoopKernel k;
    k.name = kernel->name != nullptr ? kernel->name : "anonymous";
    k.iterations = dist::Range::of_size(kernel->iterations);
    k.cost.flops_per_iter = kernel->flops_per_iter;
    k.cost.mem_bytes_per_iter = kernel->mem_bytes_per_iter;
    k.cost.transfer_bytes_per_iter = kernel->transfer_bytes_per_iter;
    k.has_reduction = kernel->has_reduction != 0;
    if (kernel->body != nullptr) {
      auto body = kernel->body;
      auto ctx = kernel->ctx;
      k.body = [body, ctx](const dist::Range& chunk,
                           mem::DeviceDataEnv& env) {
        g_current_env = &env;
        const double partial = body(chunk.lo, chunk.hi, ctx);
        g_current_env = nullptr;
        return partial;
      };
    }

    auto res = rt->runtime.offload(k, maps, opts);
    if (out != nullptr) {
      out->total_time_s = res.total_time;
      out->reduction = res.reduction;
      out->chunks = static_cast<long long>(res.chunks_issued);
      out->imbalance_percent = res.imbalance().percent();
    }
    return HOMP_OK;
  });
}

int homp_view(const char* array_name, homp_view_t* out) {
  return guard([&] {
    HOMP_REQUIRE(array_name != nullptr && out != nullptr,
                 "homp_view: null argument");
    HOMP_REQUIRE(g_current_env != nullptr,
                 "homp_view: no kernel body is executing");
    auto view = g_current_env->view<double>(array_name);
    const auto& fp = view.footprint();
    out->base = view.local_data();
    out->lo0 = fp.dim(0).lo;
    out->hi0 = fp.dim(0).hi;
    if (fp.rank() >= 2) {
      out->lo1 = fp.dim(1).lo;
      out->hi1 = fp.dim(1).hi;
      out->stride0 = fp.dim(1).size();
    } else {
      out->lo1 = 0;
      out->hi1 = 0;
      out->stride0 = 1;
    }
    return HOMP_OK;
  });
}

}  // namespace homp::capi
