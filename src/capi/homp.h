#ifndef HOMP_CAPI_HOMP_H
#define HOMP_CAPI_HOMP_H

/// \file homp.h
/// C-style API shim over the HOMP runtime, mirroring the flavour of the
/// original `homp` C library the paper releases (github.com/passlab/homp:
/// homp_init / omp_offloading_* entry points). Kernels remain C++
/// callables — the paper outlines loop bodies into functions with the
/// same shape — but everything else (handles, error codes, string-based
/// directives) is plain C style, so bindings and C callers can drive the
/// runtime.
///
/// All functions return HOMP_OK (0) or a negative error code;
/// homp_last_error() describes the most recent failure on the calling
/// thread.

#include <cstddef>

namespace homp::capi {

using homp_runtime_t = struct homp_runtime_opaque*;
using homp_array_t = struct homp_array_opaque*;

inline constexpr int HOMP_OK = 0;
inline constexpr int HOMP_ERR_INVALID = -1;   ///< bad arguments / config
inline constexpr int HOMP_ERR_PARSE = -2;     ///< malformed directive
inline constexpr int HOMP_ERR_EXEC = -3;      ///< execution failure
inline constexpr int HOMP_ERR_NOMEM = -4;

/// Kernel body: compute [lo, hi) against the named arrays; `ctx` is the
/// user pointer given to homp_offload. Return the chunk's partial
/// reduction value (0 if none).
using homp_kernel_fn = double (*)(long long lo, long long hi, void* ctx);

/// Per-element accessor handle the kernel obtains via homp_view.
struct homp_view_t {
  double* base;        ///< local storage
  long long lo0, hi0;  ///< covered global range, dim 0
  long long lo1, hi1;  ///< dim 1 (hi1 = 0 for rank-1)
  long long stride0;   ///< elements per dim-0 step in local storage
};

/// Description of the most recent error on this thread ("" if none).
const char* homp_last_error();

// ---- runtime lifecycle ----

/// Create a runtime from a built-in machine name ("full", "gpu4",
/// "cpu-mic", "host-only") or a machine-description file path.
int homp_init(const char* machine, homp_runtime_t* out);
int homp_fini(homp_runtime_t rt);

int homp_num_devices(homp_runtime_t rt);

// ---- array registration ----

/// Register a dense double array (rank 1 or 2; n1 = 0 for rank 1) under
/// `name` for use in directives.
int homp_register_array(homp_runtime_t rt, const char* name, double* data,
                        long long n0, long long n1);
/// Bind an integer symbol for array-section bounds (the n in x[0:n]).
int homp_let(homp_runtime_t rt, const char* name, long long value);

// ---- offloading ----

struct homp_kernel_desc {
  const char* name;             ///< kernel label (history key)
  long long iterations;         ///< loop trip count
  double flops_per_iter;
  double mem_bytes_per_iter;
  double transfer_bytes_per_iter;
  int has_reduction;            ///< 0/1
  homp_kernel_fn body;          ///< may be null for simulation-only runs
  void* ctx;                    ///< passed to body
  int execute_bodies;           ///< 0: pure simulation
};

struct homp_result {
  double total_time_s;
  double reduction;
  long long chunks;
  double imbalance_percent;
};

/// Offload per a HOMP directive string (§III syntax), e.g.
///   "parallel target device(0:*) map(tofrom: y[0:n]
///    partition([ALIGN(loop)])) map(to: x[0:n] partition([ALIGN(loop)]))
///    distribute dist_schedule(target:[AUTO])"
int homp_offload(homp_runtime_t rt, const char* directive,
                 const homp_kernel_desc* kernel, homp_result* out);

/// Fetch a view of a mapped array inside a kernel body. Valid only
/// during the body invocation that received `ctx`.
int homp_view(const char* array_name, homp_view_t* out);

}  // namespace homp::capi

#endif  // HOMP_CAPI_HOMP_H
