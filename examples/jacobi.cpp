// The paper's Fig. 3 Jacobi solver on a multi-device data region:
// persistent mapped arrays aligned to loop1, halo exchange each sweep,
// a '+' reduction on the residual, run until convergence.
//
// The data-region directive itself is parsed from the paper's pragma text
// to show the front-end path; the two inner loops use the runtime API.
//
// Build & run:   ./examples/jacobi [n] [m] [machine]

#include <cmath>
#include <cstdio>
#include <string>

#include "common/strings.h"
#include "pragma/parse.h"
#include "runtime/runtime.h"

namespace {
using namespace homp;

constexpr double kTol = 1e-8;
constexpr int kMaxIters = 200;
}  // namespace

int main(int argc, char** argv) {
  const long long n = argc > 1 ? parse_scaled_int(argv[1]) : 128;
  const long long m = argc > 2 ? parse_scaled_int(argv[2]) : 128;
  const std::string machine = argc > 3 ? argv[3] : "full";
  auto rt = rt::Runtime::from_builtin(machine);
  std::printf("Jacobi %lldx%lld on machine '%s' (%d devices)\n", n, m,
              machine.c_str(), rt.num_devices());

  const double omega = 0.8;
  const double ax = 1.0, ay = 1.0;
  const double b = -4.0 - 0.01;

  auto u = mem::HostArray<double>::matrix(n, m, 0.0);
  auto uold = mem::HostArray<double>::matrix(n, m, 0.0);
  auto f = mem::HostArray<double>::matrix(n, m);
  f.fill_with_indices([&](long long i, long long j) {
    const double xi = static_cast<double>(i) / static_cast<double>(n);
    const double yj = static_cast<double>(j) / static_cast<double>(m);
    return -2.0 * std::sin(3.14159 * xi) * std::sin(3.14159 * yj);
  });

  // The paper's data-region pragma (Fig. 3 lines 1-7), verbatim modulo
  // whitespace.
  auto directive = pragma::parse_directive(
      "#pragma omp parallel target data device(*) "
      "map(to: n, m, omega, ax, ay, b, "
      "     f[0:n][0:m] partition([ALIGN(loop1)], FULL)) "
      "map(tofrom: u[0:n][0:m] partition([ALIGN(loop1)], FULL)) "
      "map(alloc: uold[0:n][0:m] partition([ALIGN(loop1)], FULL) halo(1,))");
  pragma::Bindings bind;
  bind.bind("f", f);
  bind.bind("u", u);
  bind.bind("uold", uold);
  bind.let("n", n);
  bind.let("m", m);
  auto maps = pragma::build_map_specs(directive, bind);

  rt::RegionOptions ro;
  ro.device_ids = pragma::resolve_device_clause(directive.device_clause,
                                                rt.machine());
  ro.loop_label = "loop1";
  ro.loop_domain = dist::Range::of_size(n);
  // On a heterogeneous machine an even BLOCK split of the pinned region
  // data leaves the fast devices waiting; distribute rows by modelled
  // capability instead. The residual imbalance the run reports is the
  // model-vs-delivered gap (peak vs sustained bandwidth) that
  // bench_ablation_model_error quantifies.
  ro.dist_algorithm = sched::AlgorithmKind::kModel2Auto;
  ro.cost_hint.flops_per_iter = 13.0 * static_cast<double>(m);
  ro.cost_hint.mem_bytes_per_iter = 7.0 * static_cast<double>(m) * 8.0;
  auto region = rt.map_data(std::move(maps), ro);
  std::printf("region entry: %s, loop1 distribution %s\n",
              format_seconds(region->entry_time()).c_str(),
              region->loop_distribution().to_string().c_str());

  rt::LoopKernel copy_k;
  copy_k.name = "jacobi-copy";
  copy_k.iterations = dist::Range::of_size(n);
  copy_k.cost.flops_per_iter = static_cast<double>(m);
  copy_k.cost.mem_bytes_per_iter = 2.0 * static_cast<double>(m) * 8.0;
  copy_k.body = [m](const dist::Range& chunk, mem::DeviceDataEnv& env) {
    auto u_v = env.view<double>("u");
    auto uold_v = env.view<double>("uold");
    for (long long i = chunk.lo; i < chunk.hi; ++i) {
      for (long long j = 0; j < m; ++j) uold_v(i, j) = u_v(i, j);
    }
    return 0.0;
  };

  rt::LoopKernel sweep_k;
  sweep_k.name = "jacobi-sweep";
  sweep_k.iterations = dist::Range::of_size(n);
  sweep_k.cost.flops_per_iter = 13.0 * static_cast<double>(m);
  sweep_k.cost.mem_bytes_per_iter = 7.0 * static_cast<double>(m) * 8.0;
  sweep_k.has_reduction = true;
  sweep_k.body = [=](const dist::Range& chunk, mem::DeviceDataEnv& env) {
    auto u_v = env.view<double>("u");
    auto uold_v = env.view<double>("uold");
    auto f_v = env.view<double>("f");
    double error = 0.0;
    for (long long i = chunk.lo; i < chunk.hi; ++i) {
      if (i == 0 || i == n - 1) continue;
      for (long long j = 1; j < m - 1; ++j) {
        const double resid =
            (ax * (uold_v(i - 1, j) + uold_v(i + 1, j)) +
             ay * (uold_v(i, j - 1) + uold_v(i, j + 1)) +
             b * uold_v(i, j) - f_v(i, j)) /
            b;
        u_v(i, j) = uold_v(i, j) - omega * resid;
        error += resid * resid;
      }
    }
    return error;
  };

  int k = 0;
  double error = 1.0;
  while (k < kMaxIters && error > kTol) {
    region->offload(copy_k);
    region->halo_exchange("uold");  // #pragma omp halo_exchange (uold)
    auto res = region->offload(sweep_k);
    error = std::sqrt(res.reduction) /
            static_cast<double>(n * m);
    ++k;
    if (k % 20 == 0 || error <= kTol) {
      std::printf("  iter %4d   residual %.3e   (sweep %s, imbalance "
                  "%.2f%%)\n",
                  k, error, format_seconds(res.total_time).c_str(),
                  res.imbalance().percent());
    }
  }
  const double exit_t = region->close();
  std::printf("%s after %d iterations; exit copy %s; total region time %s\n",
              error <= kTol ? "converged" : "stopped", k,
              format_seconds(exit_t).c_str(),
              format_seconds(region->total_time()).c_str());

  // Sanity: interior of u must be non-trivial and finite.
  double checksum = 0.0;
  for (long long i = 0; i < n; ++i) {
    for (long long j = 0; j < m; ++j) checksum += u(i, j);
  }
  std::printf("checksum(u) = %.6f\n", checksum);
  return std::isfinite(checksum) ? 0 : 1;
}
