// Machine-description explorer: loads a machine file (writing a sample
// next to itself on first run), prints its topology, and shows what the
// analytical models (MODEL_1 / MODEL_2) would predict for each Table IV
// kernel — the planner's view before any offload runs.
//
// Build & run:   ./examples/machine_explorer [machine.ini]

#include <cstdio>
#include <fstream>
#include <string>

#include "common/table.h"
#include "kernels/case.h"
#include "machine/parser.h"
#include "machine/profiles.h"
#include "model/heuristic.h"
#include "model/loop_model.h"
#include "sched/selector.h"

int main(int argc, char** argv) {
  using namespace homp;

  mach::MachineDescriptor machine;
  if (argc > 1) {
    machine = mach::load_machine_file(argv[1]);
    std::printf("loaded machine description from %s\n", argv[1]);
  } else {
    machine = mach::builtin("full");
    const char* path = "homp_machine_sample.ini";
    std::ofstream out(path);
    out << mach::to_text(machine);
    std::printf("no file given: using builtin 'full' (sample written to "
                "%s; edit and re-run with it)\n",
                path);
  }

  std::printf("\nmachine '%s'\n", machine.name.c_str());
  {
    TextTable t({"device", "type", "memory", "link", "peak GF",
                 "sustained GF", "membw GB/s", "launch us"});
    for (const auto& d : machine.devices) {
      t.row()
          .cell(d.name)
          .cell(mach::to_string(d.type))
          .cell(mach::to_string(d.memory))
          .cell(d.link == mach::kNoLink ? std::string("-")
                                        : machine.links[d.link].name)
          .cell(d.peak_gflops, 0)
          .cell(d.sustained_gflops, 0)
          .cell(d.peak_membw_GBps, 0)
          .cell(d.launch_overhead_s * 1e6, 1);
    }
    std::puts(t.to_string().c_str());
  }
  {
    TextTable t({"link", "latency us", "bandwidth GB/s"});
    for (const auto& l : machine.links) {
      t.row().cell(l.name).cell(l.latency_s * 1e6, 1).cell(
          l.bandwidth_Bps * 1e-9, 1);
    }
    std::puts(t.to_string().c_str());
  }

  // Model predictions per kernel: weights the planner would assign.
  std::vector<int> all(machine.devices.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  auto inputs = model::prediction_inputs(machine, all);

  for (const auto& name : kern::all_kernel_names()) {
    auto c = kern::make_case(name, kern::paper_size(name), false);
    const auto cost = c->kernel().cost;
    std::printf("kernel %-10s (n=%lld): class=%s, heuristic picks %s\n",
                name.c_str(), c->problem_size(),
                to_string(model::classify(cost)),
                to_string(sched::select_algorithm(cost, inputs)));
    TextTable t({"device", "MODEL_1 weight", "MODEL_2 weight"});
    auto w1 = model::model1_weights(cost, inputs);
    auto w2 = model::model2_weights(cost, inputs);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      t.row()
          .cell(machine.devices[i].name)
          .cell(w1[i] * 100.0, 1)
          .cell(w2[i] * 100.0, 1);
    }
    std::puts(t.to_string().c_str());
  }
  return 0;
}
