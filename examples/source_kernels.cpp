// The mini-compiler path end-to-end: kernels written as annotated C-like
// source (the paper's Fig. 2 shape), compiled at runtime — pragmas parsed,
// loop body outlined into an interpreted multi-target kernel, and the
// cost profile the analytical models need derived by static analysis
// ("through compiler analysis", §IV-B2).
//
// Build & run:   ./examples/source_kernels

#include <cstdio>

#include "common/strings.h"
#include "common/table.h"
#include "lang/compile.h"
#include "memory/host_array.h"
#include "runtime/runtime.h"

int main() {
  using namespace homp;
  auto rt = rt::Runtime::from_builtin("full");
  constexpr long long kN = 100'000;

  auto x = mem::HostArray<double>::vector(kN);
  auto y = mem::HostArray<double>::vector(kN);
  auto a_mat = mem::HostArray<double>::matrix(512, 512);
  auto v_in = mem::HostArray<double>::vector(512);
  auto v_out = mem::HostArray<double>::vector(512);
  x.fill_with_index([](long long i) { return static_cast<double>(i % 17); });
  y.fill(1.0);
  a_mat.fill_with_indices([](long long i, long long j) {
    return static_cast<double>((i + j) % 5) * 0.25;
  });
  v_in.fill_with_index([](long long j) { return 0.5 + (j % 3); });

  pragma::Bindings b;
  b.bind("x", x);
  b.bind("y", y);
  b.bind("A", a_mat);
  b.bind("v", v_in);
  b.bind("w", v_out);
  b.let("n", kN);
  b.let("rows", 512);
  b.let("cols", 512);
  lang::Scalars consts;
  consts.let("a", 3.0);

  struct Source {
    const char* name;
    const char* text;
  };
  const Source sources[] = {
      {"axpy",
       R"(#pragma omp parallel target device(0:*) \
    map(tofrom: y[0:n] partition([ALIGN(loop)])) \
    map(to: x[0:n] partition([ALIGN(loop)]), a, n)
#pragma omp parallel for distribute dist_schedule(target:[AUTO])
for (i = 0; i < n; i++)
  y[i] = y[i] + a * x[i];
)"},
      {"matvec",
       R"(#pragma omp parallel target device(0:*) \
    map(to: A[0:rows][0:cols] partition([ALIGN(loop)], FULL), v[0:cols]) \
    map(from: w[0:rows] partition([ALIGN(loop)]))
#pragma omp parallel for distribute dist_schedule(target:[AUTO])
for (i = 0; i < rows; i++) {
  acc = 0;
  for (j = 0; j < cols; j++)
    acc += A[i][j] * v[j];
  w[i] = acc;
}
)"},
  };

  TextTable t({"kernel", "flops/iter (analysis)", "bytes/iter (analysis)",
               "algorithm picked", "time", "verified"});
  for (const auto& src : sources) {
    auto compiled =
        lang::compile_kernel(src.text, b, consts, rt.machine(), src.name);
    auto res =
        rt.offload(compiled.kernel, compiled.maps, compiled.options);

    bool ok = true;
    if (std::string(src.name) == "axpy") {
      for (long long i = 0; i < kN && ok; ++i) {
        ok = y(i) == 1.0 + 3.0 * (i % 17);
      }
    } else {
      for (long long i = 0; i < 512 && ok; ++i) {
        double expect = 0.0;
        for (long long j = 0; j < 512; ++j) expect += a_mat(i, j) * v_in(j);
        ok = std::abs(v_out(i) - expect) < 1e-9;
      }
    }
    t.row()
        .cell(src.name)
        .cell(compiled.kernel.cost.flops_per_iter, 1)
        .cell(compiled.kernel.cost.mem_bytes_per_iter, 1)
        .cell(to_string(res.algorithm_used))
        .cell(format_seconds(res.total_time))
        .cell(ok ? "yes" : "NO");
  }
  std::puts(t.to_string().c_str());
  std::printf("both kernels were compiled from the source text above at "
              "runtime;\nno hand-written cost profiles or bodies were "
              "involved.\n");
  return 0;
}
