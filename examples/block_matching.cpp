// Motion estimation (2-D block matching) across CPU + GPUs + MICs with
// CUTOFF device selection — the paper's compute-intensive,
// neighbourhood-communication workload (bm2d in Table IV / Table V).
//
// Shows: per-policy timing comparison, CUTOFF's device choices, and the
// estimated motion field of a synthetic shifted frame.
//
// Build & run:   ./examples/block_matching [frame_edge]

#include <cstdio>
#include <map>
#include <string>

#include "common/strings.h"
#include "common/table.h"
#include "kernels/bm2d.h"
#include "runtime/runtime.h"

int main(int argc, char** argv) {
  using namespace homp;
  const long long edge = argc > 1 ? parse_scaled_int(argv[1]) : 128;
  auto rt = rt::Runtime::from_builtin("full");
  kern::Bm2dCase c(edge, /*materialize=*/true);
  std::printf("block matching: %lldx%lld frame, %lldx%lld blocks of 16px, "
              "search +-8px\n",
              edge, edge, edge / 16, edge / 16);

  TextTable table({"policy", "time", "devices used", "verified"});
  const sched::AlgorithmKind policies[] = {
      sched::AlgorithmKind::kBlock,
      sched::AlgorithmKind::kDynamic,
      sched::AlgorithmKind::kModel1Auto,
      sched::AlgorithmKind::kSchedProfileAuto,
  };
  for (auto kind : policies) {
    c.init();
    rt::OffloadOptions o;
    o.device_ids = rt.all_devices();
    o.sched.kind = kind;
    o.sched.cutoff_ratio =
        sched::algorithm_info(kind).supports_cutoff ? 0.15 : 0.0;
    auto maps = c.maps();
    auto kernel = c.kernel();
    auto res = rt.offload(kernel, maps, o);

    int used = 0;
    for (const auto& d : res.devices) {
      if (d.iterations > 0) ++used;
    }
    std::string why;
    const bool ok = c.verify(&why);
    table.row()
        .cell(to_string(kind))
        .cell(format_seconds(res.total_time))
        .cell(static_cast<long long>(used))
        .cell(ok ? "yes" : why);
    if (res.has_cutoff && res.cutoff.num_selected < rt.num_devices()) {
      std::printf("  %s CUTOFF kept:", to_string(kind));
      for (std::size_t i = 0; i < res.devices.size(); ++i) {
        if (res.cutoff.selected[i]) {
          std::printf(" %s", res.devices[i].device_name.c_str());
        }
      }
      std::printf("\n");
    }
  }
  std::printf("\n");
  std::puts(table.to_string().c_str());

  // Motion-vector histogram from the last run: the synthetic reference
  // frame is the current frame shifted, so one displacement dominates.
  c.init();
  {
    rt::OffloadOptions o;
    o.device_ids = rt.all_devices();
    o.sched.kind = sched::AlgorithmKind::kBlock;
    auto maps = c.maps();
    auto kernel = c.kernel();
    rt.offload(kernel, maps, o);
  }
  std::map<std::pair<long long, long long>, int> histogram;
  for (long long bi = 0; bi < c.blocks_per_side(); ++bi) {
    for (long long bj = 0; bj < c.blocks_per_side(); ++bj) {
      ++histogram[c.motion_vector(bi, bj)];
    }
  }
  std::printf("top motion vectors (dy, dx):\n");
  int printed = 0;
  while (printed < 3 && !histogram.empty()) {
    auto best = histogram.begin();
    for (auto it = histogram.begin(); it != histogram.end(); ++it) {
      if (it->second > best->second) best = it;
    }
    std::printf("  (%+lld, %+lld): %d blocks\n", best->first.first,
                best->first.second, best->second);
    histogram.erase(best);
    ++printed;
  }
  std::string why;
  std::printf("%s\n", c.verify(&why)
                          ? "motion field verified against sequential search"
                          : why.c_str());
  return 0;
}
