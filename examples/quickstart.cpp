// Quickstart: AXPY across every device of a simulated heterogeneous node,
// expressed three ways:
//   1. the C++ builder API (options struct),
//   2. HOMP pragma strings, v2 style — data aligned with the loop
//      (axpy_homp_v2 in the paper's Fig. 2),
//   3. HOMP pragma strings, v1 style — loop aligned with BLOCK data
//      (axpy_homp_v1).
//
// Build & run:   ./examples/quickstart

#include <cstdio>
#include <string>

#include "common/strings.h"
#include "common/table.h"
#include "kernels/axpy.h"
#include "pragma/parse.h"
#include "runtime/runtime.h"

namespace {

using namespace homp;

constexpr long long kN = 1'000'000;

rt::LoopKernel make_axpy_kernel(double a) {
  rt::LoopKernel k;
  k.name = "axpy";
  k.iterations = dist::Range::of_size(kN);
  k.cost.flops_per_iter = 2.0;
  k.cost.mem_bytes_per_iter = 24.0;
  k.cost.transfer_bytes_per_iter = 24.0;
  k.body = [a](const dist::Range& chunk, mem::DeviceDataEnv& env) {
    auto x = env.view<double>("x");
    auto y = env.view<double>("y");
    for (long long i = chunk.lo; i < chunk.hi; ++i) y(i) += a * x(i);
    return 0.0;
  };
  return k;
}

bool check(const mem::HostArray<double>& y, double a, const char* what) {
  for (long long i = 0; i < kN; ++i) {
    const double expect = 1.0 + a * static_cast<double>(i % 1000);
    if (y(i) != expect) {
      std::printf("  %-28s FAILED at i=%lld (%g != %g)\n", what, i, y(i),
                  expect);
      return false;
    }
  }
  std::printf("  %-28s results verified\n", what);
  return true;
}

}  // namespace

int main() {
  using namespace homp;
  auto rt = rt::Runtime::from_builtin("full");
  std::printf("Machine '%s': %d devices\n", rt.machine().name.c_str(),
              rt.num_devices());
  for (const auto& d : rt.machine().devices) {
    std::printf("  %-12s %-6s peak %6.0f GF, membw %5.0f GB/s\n",
                d.name.c_str(), mach::to_string(d.type), d.peak_gflops,
                d.peak_membw_GBps);
  }

  const double a = 2.0;
  auto x = mem::HostArray<double>::vector(kN);
  auto y = mem::HostArray<double>::vector(kN);
  auto reset = [&] {
    x.fill_with_index([](long long i) { return static_cast<double>(i % 1000); });
    y.fill(1.0);
  };
  auto kernel = make_axpy_kernel(a);

  TextTable table({"variant", "algorithm", "offload time", "chunks"});

  // ---- 1. Builder API ------------------------------------------------
  {
    reset();
    rt::OffloadOptions o;
    o.device_ids = rt.all_devices();
    o.sched.kind = sched::AlgorithmKind::kDynamic;
    mem::MapSpec sx, sy;
    sx.name = "x";
    sx.dir = mem::MapDirection::kTo;
    sx.binding = mem::bind_array(x);
    sx.region = x.region();
    sx.partition = {dist::DimPolicy::align("loop")};
    sy = sx;
    sy.name = "y";
    sy.dir = mem::MapDirection::kToFrom;
    sy.binding = mem::bind_array(y);
    std::vector<mem::MapSpec> maps{sx, sy};
    auto res = rt.offload(kernel, maps, o);
    table.row()
        .cell("builder API")
        .cell(to_string(res.algorithm_used))
        .cell(format_seconds(res.total_time))
        .cell(res.chunks_issued);
    check(y, a, "builder API");
  }

  // ---- 2. Pragma, v2: align data with computation --------------------
  {
    reset();
    auto d = pragma::parse_directive(
        "#pragma omp parallel target device(0:*) "
        "map(tofrom: y[0:n] partition([ALIGN(loop)])) "
        "map(to: x[0:n] partition([ALIGN(loop)]), a, n) "
        "distribute dist_schedule(target:[AUTO])");
    pragma::Bindings b;
    b.bind("x", x);
    b.bind("y", y);
    b.let("n", kN);
    auto maps = pragma::build_map_specs(d, b);
    auto opts = pragma::to_offload_options(d, rt.machine());
    auto res = rt.offload(kernel, maps, opts);
    table.row()
        .cell("pragma v2 (ALIGN(loop))")
        .cell(to_string(res.algorithm_used))
        .cell(format_seconds(res.total_time))
        .cell(res.chunks_issued);
    check(y, a, "pragma v2");
  }

  // ---- 3. Pragma, v1: align computation with data --------------------
  {
    reset();
    auto d = pragma::parse_directive(
        "#pragma omp parallel target device(0:*) "
        "map(tofrom: y[0:n] partition([BLOCK])) "
        "map(to: x[0:n] partition([BLOCK]), a, n) "
        "distribute dist_schedule(target:[ALIGN(x)])");
    pragma::Bindings b;
    b.bind("x", x);
    b.bind("y", y);
    b.let("n", kN);
    auto maps = pragma::build_map_specs(d, b);
    auto opts = pragma::to_offload_options(d, rt.machine());
    auto res = rt.offload(kernel, maps, opts);
    table.row()
        .cell("pragma v1 (ALIGN(x))")
        .cell("aligned/BLOCK")
        .cell(format_seconds(res.total_time))
        .cell(res.chunks_issued);
    check(y, a, "pragma v1");
  }

  std::printf("\n");
  std::puts(table.to_string().c_str());
  return 0;
}
