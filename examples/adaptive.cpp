// Adaptive mapping with throughput history (the HISTORY_AUTO extension —
// Qilin-style, the paper's stated future work): repeated offloads of the
// same kernels converge to near-oracle splits, and the learned model can
// be saved and reloaded across "runs".
//
// Build & run:   ./examples/adaptive

#include <cstdio>
#include <string>

#include "common/strings.h"
#include "common/table.h"
#include "kernels/case.h"
#include "runtime/runtime.h"

int main() {
  using namespace homp;
  auto rt = rt::Runtime::from_builtin("full");
  auto rt_oracle = rt::Runtime::from_builtin("full");  // keeps rt's history clean
  const auto devices = rt.all_devices();
  std::printf("Adaptive (history-based) mapping on the full machine\n\n");

  TextTable t({"kernel", "1st (model fallback)", "2nd", "3rd",
               "oracle best of 7"});
  for (const auto& name : kern::all_kernel_names()) {
    const long long n = kern::paper_size(name);
    auto c = kern::make_case(name, n, /*materialize=*/false);
    auto maps = c->maps();
    auto kernel = c->kernel();

    // Oracle: best of the paper's seven algorithms.
    double oracle = 1e300;
    for (int a = 0; a < sched::kNumAlgorithms; ++a) {
      rt::OffloadOptions o;
      o.device_ids = devices;
      o.sched.kind = sched::all_algorithms()[a];
      o.execute_bodies = false;
      oracle =
          std::min(oracle, rt_oracle.offload(kernel, maps, o).total_time);
    }

    double runs[3];
    for (double& ti : runs) {
      rt::OffloadOptions o;
      o.device_ids = devices;
      o.sched.kind = sched::AlgorithmKind::kHistoryAuto;
      o.execute_bodies = false;
      ti = rt.offload(kernel, maps, o).total_time;
    }
    t.row().cell(name);
    for (double ti : runs) t.cell(ti * 1e3, 3);
    t.cell(oracle * 1e3, 3);
  }
  std::puts(t.to_string().c_str());

  // Persist the learned model, reload it into a fresh runtime, and show
  // the first offload there starts warm.
  const std::string path = "/tmp/homp_adaptive_history.tsv";
  rt.history().save_file(path);
  auto rt2 = rt::Runtime::from_builtin("full");
  rt2.history().load_file(path);
  std::printf("saved %zu learned (kernel, device) rates to %s and "
              "reloaded them into a fresh runtime\n",
              rt.history().size(), path.c_str());

  auto c = kern::make_case("axpy", kern::paper_size("axpy"), false);
  auto maps = c->maps();
  auto kernel = c->kernel();
  rt::OffloadOptions o;
  o.device_ids = devices;
  o.sched.kind = sched::AlgorithmKind::kHistoryAuto;
  o.execute_bodies = false;
  auto res = rt2.offload(kernel, maps, o);
  std::printf("fresh runtime, warm history: axpy in %s (vs cold-model "
              "first run above)\n",
              format_seconds(res.total_time).c_str());
  return 0;
}
