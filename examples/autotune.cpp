// Algorithm auto-selection end-to-end (§IV-D / §VI-D): for every Table IV
// kernel on every machine, run all seven algorithms, then compare the
// heuristic's pick (what dist_schedule(target:[AUTO]) resolves to) against
// the measured oracle best.
//
// Build & run:   ./examples/autotune

#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "common/table.h"
#include "kernels/case.h"
#include "runtime/runtime.h"
#include "sched/selector.h"

int main() {
  using namespace homp;
  int agree = 0, within10 = 0, total = 0;

  for (const std::string machine : {"gpu4", "cpu-mic", "full"}) {
    auto rt = rt::Runtime::from_builtin(machine);
    std::printf("=== machine %s ===\n", machine.c_str());
    TextTable t({"kernel", "heuristic pick", "oracle best", "pick time",
                 "best time", "penalty %"});
    for (const auto& name : kern::all_kernel_names()) {
      auto c = kern::make_case(name, kern::paper_size(name), false);
      auto kernel = c->kernel();
      auto maps = c->maps();

      double best_time = 1e300;
      sched::AlgorithmKind best = sched::AlgorithmKind::kBlock;
      double times[sched::kNumAlgorithms];
      for (int a = 0; a < sched::kNumAlgorithms; ++a) {
        const auto kind = sched::all_algorithms()[a];
        rt::OffloadOptions o;
        o.device_ids = rt.all_devices();
        o.sched.kind = kind;
        o.execute_bodies = false;
        times[a] = rt.offload(kernel, maps, o).total_time;
        if (times[a] < best_time) {
          best_time = times[a];
          best = kind;
        }
      }

      rt::OffloadOptions o;
      o.device_ids = rt.all_devices();
      o.auto_select_algorithm = true;
      o.execute_bodies = false;
      auto picked = rt.offload(kernel, maps, o);
      const double penalty =
          (picked.total_time - best_time) / best_time * 100.0;

      ++total;
      if (picked.algorithm_used == best) ++agree;
      if (penalty <= 10.0) ++within10;
      t.row()
          .cell(name)
          .cell(to_string(picked.algorithm_used))
          .cell(to_string(best))
          .cell(format_seconds(picked.total_time))
          .cell(format_seconds(best_time))
          .cell(penalty, 1);
    }
    std::puts(t.to_string().c_str());
  }
  std::printf("heuristic == oracle on %d/%d cases; within 10%% of oracle on "
              "%d/%d\n",
              agree, total, within10, total);
  return 0;
}
