#!/usr/bin/env python3
"""Run clang-tidy over the project's own translation units, in parallel.

Reads compile_commands.json from the build directory (exported by CMake by
default), keeps only first-party TUs under src/, and fans clang-tidy out
across cores.  The .clang-tidy file at the repo root supplies the check
profile; WarningsAsErrors there makes any finding fail this script.

The container/toolchain may not ship clang-tidy; by default a missing
binary is a soft skip (exit 0 with a notice) so local `ctest` stays green.
CI passes --required to turn a missing binary into a hard failure — the
static-analysis job must never silently skip the gate.

Usage:
  python3 tools/lint/run_clang_tidy.py -p build [--required] [--jobs N]
          [--clang-tidy clang-tidy-15] [paths...]
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys


def find_binary(explicit):
    candidates = [explicit] if explicit else []
    candidates += ["clang-tidy"] + ["clang-tidy-%d" % v for v in range(20, 13, -1)]
    for c in candidates:
        if c and shutil.which(c):
            return c
    return None


def load_tus(build_dir, roots):
    db_path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(db_path, encoding="utf-8") as f:
            db = json.load(f)
    except OSError as e:
        print("run-clang-tidy: cannot read %s: %s" % (db_path, e),
              file=sys.stderr)
        print("run-clang-tidy: configure first: cmake -B %s -S ." % build_dir,
              file=sys.stderr)
        return None
    roots = [os.path.abspath(r) + os.sep for r in roots]
    tus = []
    for entry in db:
        path = os.path.abspath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        if any(path.startswith(r) for r in roots):
            tus.append(path)
    return sorted(set(tus))


def main(argv=None):
    ap = argparse.ArgumentParser(prog="run_clang_tidy.py")
    ap.add_argument("paths", nargs="*", default=[],
                    help="source roots to include (default: src)")
    ap.add_argument("-p", "--build-dir", default="build",
                    help="build dir holding compile_commands.json")
    ap.add_argument("--clang-tidy", default=None,
                    help="clang-tidy binary to use (default: autodetect)")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("--required", action="store_true",
                    help="fail (exit 2) when clang-tidy is missing instead "
                         "of skipping; CI sets this")
    args = ap.parse_args(argv)

    binary = find_binary(args.clang_tidy)
    if binary is None:
        msg = "run-clang-tidy: no clang-tidy binary found"
        if args.required:
            print(msg + " (and --required was set)", file=sys.stderr)
            return 2
        print(msg + "; skipping (install clang-tidy to enable this gate)",
              file=sys.stderr)
        return 0

    tus = load_tus(args.build_dir, args.paths or ["src"])
    if tus is None:
        return 2
    if not tus:
        print("run-clang-tidy: no translation units matched", file=sys.stderr)
        return 2

    print("run-clang-tidy: %s over %d TUs, %d jobs"
          % (binary, len(tus), args.jobs))
    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futs = {pool.submit(
            subprocess.run,
            [binary, "-p", args.build_dir, "--quiet", tu],
            capture_output=True, text=True): tu for tu in tus}
        for fut in concurrent.futures.as_completed(futs):
            tu = futs[fut]
            r = fut.result()
            if r.returncode != 0:
                failures += 1
                sys.stdout.write(r.stdout)
                sys.stderr.write(r.stderr)
    if failures:
        print("run-clang-tidy: %d of %d TUs had findings"
              % (failures, len(tus)), file=sys.stderr)
        return 1
    print("run-clang-tidy: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
