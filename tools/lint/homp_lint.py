#!/usr/bin/env python3
"""homp-lint: project-invariant static analysis for the HOMP runtime.

The runtime's determinism story (DESIGN.md §2: virtual time, seeded PRNGs,
FIFO tie-breaking) and its resilience machinery (docs/RESILIENCE.md) rest on
invariants no compiler flag checks.  This linter checks them statically,
with zero dependencies beyond the Python standard library.

Checks
------
HL001  deferred-ref-capture   Reference-capturing lambda ([&], [&x]) passed
                              to a deferred-execution site (Engine::schedule_at
                              / schedule_after, Latch::wait, Barrier::arrive,
                              Link::transfer).
                              The callback outlives the enclosing frame; a
                              by-reference capture of a stack local is a
                              use-after-return that ASan only catches when the
                              event actually fires in a test.
HL002  wall-clock-ban         Wall-clock or ambient-entropy calls
                              (std::chrono::*_clock::now, rand, srand,
                              std::random_device, time(), gettimeofday)
                              outside src/sim/time.h and src/common/prng.h.
                              Simulated paths must draw time from sim::Engine
                              and randomness from common::Prng or runs stop
                              being reproducible.
HL003  include-layering       #include crossing the layer DAG declared in
                              tools/lint/layers.toml.  Only direct includes
                              of files under src/ are checked.
HL004  header-hygiene         Include-guard name must match the header path
                              (src/sim/engine.h -> HOMP_SIM_ENGINE_H); no
                              `using namespace` at any scope in a header.
HL005  dead-telemetry         Every DeviceStats field / RecoveryAction
                              enumerator declared must be referenced outside
                              its declaration — an unread counter is telemetry
                              that silently rotted.  Also applies to the
                              metric-name catalog: an `inline constexpr char
                              kX[]` constant in an obs/ directory that no
                              exporter references is a metric that silently
                              vanished from every dashboard.  Likewise the
                              advisor's report-key roster: such a constant
                              in an advise/ directory that no attribution or
                              report code references is a finding kind that
                              can no longer be emitted.
HL006  untagged-serve-timer   Engine::schedule_at / schedule_after called
                              under src/serve without a generation-tag third
                              argument.  The serving layer's memory-flatness
                              contract (docs/SERVING.md "Timer lifecycle":
                              zero pending events and zero live generations
                              after a drain) holds only because every server
                              timer is cancellable via its tag; an untagged
                              arm outlives the job that armed it.
HL007  unordered-export-iter  Range-for over a std::unordered_map /
                              unordered_set declared in the same file, inside
                              code that feeds exports, digests or oracles
                              (src/obs, src/fuzz, or a basename containing
                              report/export/metrics/trace/digest/summary/
                              oracle).  Unordered iteration order varies
                              across libc++/libstdc++ and hash seeds, so
                              anything serialized from it silently stops
                              being byte-identical (docs/DETERMINISM.md).
HL008  untracked-event-write  Direct mutation of a dsan-tracked member
                              (tools/lint/dsan_cells.toml roster) inside an
                              event lambda at a deferred-execution site.
                              Writes to tracked shared state must route
                              through the owning object's accessor carrying
                              HOMP_DSAN_READ/WRITE, or the determinism
                              sanitizer never sees them.

Suppression
-----------
Append `// homp-lint: allow(HL001)` (comma-separate several IDs) on the
offending line or the line directly above it.

Exit codes: 0 = clean, 1 = diagnostics emitted, 2 = usage/config error.
"""

import argparse
import bisect
import json
import multiprocessing
import os
import re
import subprocess
import sys

DEFAULT_EXTS = (".h", ".hpp", ".cpp", ".cc", ".cxx")

# Directories never walked implicitly (fixtures are intentionally bad code;
# build trees hold generated/vendored sources).
SKIP_DIR_NAMES = {"fixtures", ".git"}
SKIP_DIR_PREFIXES = ("build",)

# Files allowed to touch wall clocks / ambient entropy (HL002).
HL002_ALLOWED_SUFFIXES = (
    os.path.join("src", "sim", "time.h"),
    os.path.join("src", "common", "prng.h"),
)

CHECKS = {
    "HL001": "deferred-ref-capture",
    "HL002": "wall-clock-ban",
    "HL003": "include-layering",
    "HL004": "header-hygiene",
    "HL005": "dead-telemetry",
    "HL006": "untagged-serve-timer",
    "HL007": "unordered-export-iter",
    "HL008": "untracked-event-write",
}

SUPPRESS_RE = re.compile(r"homp-lint:\s*allow\(([^)]*)\)")


class ConfigError(Exception):
    pass


class Diagnostic:
    __slots__ = ("check_id", "path", "line", "message", "hint")

    def __init__(self, check_id, path, line, message, hint):
        self.check_id = check_id
        self.path = path
        self.line = line
        self.message = message
        self.hint = hint

    def as_dict(self):
        return {
            "id": self.check_id,
            "check": CHECKS[self.check_id],
            "file": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self):
        return "%s:%d: %s [%s] %s (fix: %s)" % (
            self.path, self.line, self.check_id, CHECKS[self.check_id],
            self.message, self.hint)


class SourceFile:
    """One parsed source file: raw text, comment/string-blanked text, and a
    newline index so byte offsets map back to 1-based line numbers."""

    def __init__(self, path, text, clean=None):
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        # `clean` may be handed in precomputed (the worker pool ships it
        # back so the cross-file pass need not re-blank every file).
        self.clean = _blank_comments_and_strings(text) if clean is None else clean
        self._nl = [i for i, ch in enumerate(text) if ch == "\n"]

    def line_of(self, offset):
        return bisect.bisect_right(self._nl, offset - 1) + 1

    def suppressed(self, line, check_id):
        """True when `line` (1-based) or the line above carries an
        `// homp-lint: allow(<id>)` comment naming check_id."""
        for ln in (line, line - 1):
            if 1 <= ln <= len(self.lines):
                m = SUPPRESS_RE.search(self.lines[ln - 1])
                if m:
                    ids = [t.strip() for t in m.group(1).split(",")]
                    if check_id in ids:
                        return True
        return False


def _blank_comments_and_strings(text):
    """Replace the contents of comments and string/char literals with spaces,
    preserving length and newlines so offsets keep mapping to lines."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            for k in range(i, j):
                if out[k] != "\n":
                    out[k] = " "
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            # keep the quotes themselves, blank the payload
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = min(j, n) + 1
        else:
            i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Config (layers.toml)
# ---------------------------------------------------------------------------

def load_layers(path):
    """Parse the [layers] table: `name = ["dep", ...]` entries.  Uses tomllib
    when available (Python >= 3.11) and a sufficient hand parser otherwise."""
    try:
        with open(path, "rb") as f:
            raw = f.read()
    except OSError as e:
        raise ConfigError("cannot read layer config %s: %s" % (path, e))
    try:
        import tomllib
        data = tomllib.loads(raw.decode("utf-8"))
        layers = data.get("layers", {})
    except ModuleNotFoundError:
        layers = _parse_layers_fallback(raw.decode("utf-8"), path)
    except Exception as e:  # tomllib.TOMLDecodeError
        raise ConfigError("malformed %s: %s" % (path, e))
    if not isinstance(layers, dict) or not layers:
        raise ConfigError("%s: missing or empty [layers] table" % path)
    for name, deps in layers.items():
        if not isinstance(deps, list) or not all(isinstance(d, str) for d in deps):
            raise ConfigError("%s: layer %r must map to a list of strings"
                              % (path, name))
        for d in deps:
            if d not in layers:
                raise ConfigError("%s: layer %r depends on undeclared layer %r"
                                  % (path, name, d))
    _require_acyclic(layers, path)
    return layers


def _parse_layers_fallback(text, path):
    layers = {}
    in_table = False
    entry_re = re.compile(r'^\s*([\w.-]+)\s*=\s*\[([^\]]*)\]\s*$')
    for line in text.splitlines():
        line = line.split("#", 1)[0].rstrip()
        if not line:
            continue
        if re.match(r"^\s*\[layers\]\s*$", line):
            in_table = True
            continue
        if re.match(r"^\s*\[", line):
            in_table = False
            continue
        if in_table:
            m = entry_re.match(line)
            if not m:
                raise ConfigError("%s: cannot parse line %r" % (path, line))
            deps = [d.strip().strip('"').strip("'")
                    for d in m.group(2).split(",") if d.strip()]
            layers[m.group(1)] = deps
    return layers


def _require_acyclic(layers, path):
    WHITE, GREY, BLACK = 0, 1, 2
    color = {k: WHITE for k in layers}

    def visit(node, stack):
        color[node] = GREY
        for dep in layers[node]:
            if color[dep] == GREY:
                cycle = " -> ".join(stack + [node, dep])
                raise ConfigError("%s: layer graph has a cycle: %s"
                                  % (path, cycle))
            if color[dep] == WHITE:
                visit(dep, stack + [node])
        color[node] = BLACK

    for k in layers:
        if color[k] == WHITE:
            visit(k, [])


# ---------------------------------------------------------------------------
# HL001 — reference captures at deferred-execution sites
# ---------------------------------------------------------------------------

DEFERRED_SITE_RE = re.compile(
    r"(?:\bschedule_at|\bschedule_after|[.>]\s*wait|[.>]\s*arrive"
    r"|[.>]\s*transfer)\s*\(")
LAMBDA_INTRO_RE = re.compile(r"\[([^\[\]]*)\]\s*(?=[({]|mutable\b|->)")


def _matching_paren(clean, open_idx):
    depth = 0
    for i in range(open_idx, len(clean)):
        if clean[i] == "(":
            depth += 1
        elif clean[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(clean) - 1


def check_hl001(sf, diags, strict, exempt_tests):
    if not strict and exempt_tests and _under_tests(sf.path):
        # Test/bench/example frames own the Engine and drive it to completion
        # before returning, so stack captures legitimately outlive every
        # scheduled event.  See docs/STATIC_ANALYSIS.md.
        return
    for m in DEFERRED_SITE_RE.finditer(sf.clean):
        open_idx = m.end() - 1
        close_idx = _matching_paren(sf.clean, open_idx)
        args = sf.clean[open_idx + 1:close_idx]
        for lm in LAMBDA_INTRO_RE.finditer(args):
            caps = [c.strip() for c in lm.group(1).split(",") if c.strip()]
            bad = [c for c in caps if c.startswith("&")]
            if not bad:
                continue
            line = sf.line_of(m.start())
            if sf.suppressed(line, "HL001"):
                continue
            diags.append(Diagnostic(
                "HL001", sf.path, line,
                "lambda with by-reference capture (%s) passed to a "
                "deferred-execution site; the callback can outlive the "
                "captured frame" % ", ".join(bad),
                "capture by value, move ownership into the lambda "
                "(x = std::move(x)), or hold the state in the owning object "
                "and capture `this`"))


def _under_tests(path):
    parts = _parts(path)
    return any(p in ("tests", "bench", "examples") for p in parts)


def _parts(path):
    return [p for p in os.path.normpath(path).split(os.sep) if p not in ("", ".")]


# ---------------------------------------------------------------------------
# HL002 — wall-clock / ambient-entropy ban
# ---------------------------------------------------------------------------

HL002_PATTERNS = [
    (re.compile(r"std::chrono::\w*_clock\s*::\s*now"
                r"|\b(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now"),
     "wall-clock read (chrono clock ::now)"),
    (re.compile(r"\bstd::random_device\b|(?<![\w:])random_device\s*[({]"),
     "ambient entropy (std::random_device)"),
    (re.compile(r"\bstd::s?rand\s*\(|(?<![\w.:>])s?rand\s*\("),
     "C PRNG (rand/srand) seeded from ambient state"),
    (re.compile(r"\bstd::time\s*\(|(?<![\w.:>])(?:time|gettimeofday|clock_gettime)\s*\("),
     "wall-clock read (C time API)"),
]


def check_hl002(sf, diags):
    norm = os.path.normpath(sf.path)
    if any(norm.endswith(suf) for suf in HL002_ALLOWED_SUFFIXES):
        return
    for rx, what in HL002_PATTERNS:
        for m in rx.finditer(sf.clean):
            line = sf.line_of(m.start())
            if sf.suppressed(line, "HL002"):
                continue
            diags.append(Diagnostic(
                "HL002", sf.path, line,
                "%s in simulated code; virtual time and seeded PRNGs are the "
                "only reproducible sources" % what,
                "take time from sim::Engine::now() and randomness from "
                "common::Prng; if this file is a sanctioned boundary, add it "
                "to HL002_ALLOWED_SUFFIXES"))


# ---------------------------------------------------------------------------
# HL003 — include layering against layers.toml
# ---------------------------------------------------------------------------

# Matched against the comment-blanked text to skip commented-out includes;
# the quoted path itself is read back from the raw text at the same offsets
# (the sanitizer blanks string-literal payloads but preserves length).
INCLUDE_SITE_RE = re.compile(r'^[ \t]*#[ \t]*include[ \t]*"', re.M)


def src_layer_of(path, layers):
    """Layer name for a file under .../src/<layer>/..., else None."""
    parts = _parts(path)
    idxs = [i for i, p in enumerate(parts) if p == "src"]
    if not idxs:
        return None
    i = idxs[-1]
    if i + 1 < len(parts) - 0 and i + 1 < len(parts):
        cand = parts[i + 1]
        if cand in layers and i + 2 <= len(parts) - 1:
            return cand
    return None


def check_hl003(sf, diags, layers):
    layer = src_layer_of(sf.path, layers)
    if layer is None:
        return
    allowed = set(layers[layer]) | {layer}
    for m in INCLUDE_SITE_RE.finditer(sf.clean):
        close = sf.text.find('"', m.end())
        if close == -1:
            continue
        target = sf.text[m.end():close].split("/", 1)[0]
        if target not in layers:
            continue  # not a project layer include (e.g. local header)
        if target in allowed:
            continue
        line = sf.line_of(m.start())
        if sf.suppressed(line, "HL003"):
            continue
        diags.append(Diagnostic(
            "HL003", sf.path, line,
            "layer '%s' must not include layer '%s' (allowed: %s)"
            % (layer, target, ", ".join(sorted(allowed))),
            "route the dependency through a lower layer, or (if the edge is "
            "intentional) add it to tools/lint/layers.toml in this PR"))


# ---------------------------------------------------------------------------
# HL004 — header hygiene
# ---------------------------------------------------------------------------

GUARD_IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)", re.M)
GUARD_DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)", re.M)
USING_NS_RE = re.compile(r"^[ \t]*using\s+namespace\b", re.M)


def expected_guard(path):
    """HOMP_<PATH_FROM_SRC> for files under src/; otherwise only the
    `<STEM>_H` suffix is required (returns None for exact, suffix string)."""
    parts = _parts(path)
    idxs = [i for i, p in enumerate(parts) if p == "src"]
    if idxs:
        rel = parts[idxs[-1] + 1:]
        if rel:
            flat = "_".join(rel)
            return "HOMP_" + re.sub(r"[^A-Za-z0-9]", "_", flat).upper(), None
    stem = os.path.splitext(os.path.basename(path))[0]
    return None, re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H"


def check_hl004(sf, diags):
    if not sf.path.endswith((".h", ".hpp")):
        return
    exact, suffix = expected_guard(sf.path)
    gm = GUARD_IFNDEF_RE.search(sf.clean)
    if gm is None:
        if not sf.suppressed(1, "HL004"):
            diags.append(Diagnostic(
                "HL004", sf.path, 1,
                "header has no include guard",
                "open with #ifndef %s / #define %s"
                % (exact or ("<STEM>_H",), exact or "<STEM>_H")))
    else:
        guard = gm.group(1)
        line = sf.line_of(gm.start())
        ok = (guard == exact) if exact is not None else guard.endswith(suffix)
        if not ok and not sf.suppressed(line, "HL004"):
            want = exact if exact is not None else "*%s" % suffix
            diags.append(Diagnostic(
                "HL004", sf.path, line,
                "include guard '%s' does not match header path (expected %s)"
                % (guard, want),
                "rename the guard in the #ifndef/#define/#endif trio to match "
                "the file's path"))
        else:
            dm = GUARD_DEFINE_RE.search(sf.clean, gm.end())
            if dm is None or dm.group(1) != guard:
                dline = sf.line_of(dm.start()) if dm else line
                if not sf.suppressed(dline, "HL004"):
                    diags.append(Diagnostic(
                        "HL004", sf.path, dline,
                        "#define does not repeat the include-guard name '%s'"
                        % guard,
                        "make the #define directly after #ifndef use the same "
                        "macro name"))
    for m in USING_NS_RE.finditer(sf.clean):
        line = sf.line_of(m.start())
        if sf.suppressed(line, "HL004"):
            continue
        diags.append(Diagnostic(
            "HL004", sf.path, line,
            "`using namespace` in a header leaks into every includer",
            "qualify names explicitly or move the using-directive into a "
            ".cpp file"))


# ---------------------------------------------------------------------------
# HL005 — dead telemetry counters
# ---------------------------------------------------------------------------

MEMBER_RE = re.compile(
    r"^\s*(?!using\b|typedef\b|static_assert\b|friend\b|public\b|private\b"
    r"|protected\b|struct\b|class\b|enum\b|template\b|return\b|if\b|for\b)"
    r"[\w:<>,*&\s]+?[\s&*](\w+)\s*(?:\[[^\]]*\]\s*)?(?:=[^;]*)?;",
    re.M)
ENUMERATOR_RE = re.compile(r"^\s*(k\w+)\s*(?:=[^,}]*)?,?", re.M)
# Rostered string-constant catalogs: metric names (src/obs/metric_names.h)
# in any file with an `obs` path component, and advisor report keys
# (src/advise/report_keys.h) in any file with an `advise` component.
METRIC_CONST_RE = re.compile(r"\binline\s+constexpr\s+char\s+(k\w+)\s*\[\s*\]")


def _find_block(clean, decl_re):
    m = decl_re.search(clean)
    if not m:
        return None
    open_idx = clean.find("{", m.end() - 1)
    if open_idx == -1:
        return None
    depth = 0
    for i in range(open_idx, len(clean)):
        if clean[i] == "{":
            depth += 1
        elif clean[i] == "}":
            depth -= 1
            if depth == 0:
                return m.start(), open_idx, i
    return None


def check_hl005(files, diags, struct_name, enum_name):
    decls = []  # (name, kind, SourceFile, body_span, line)
    for sf in files:
        const_kind = None
        if "obs" in _parts(sf.path):
            const_kind = "metric-name constant"
        elif "advise" in _parts(sf.path):
            const_kind = "report-key constant"
        if const_kind:
            for mm in METRIC_CONST_RE.finditer(sf.clean):
                end = sf.clean.find(";", mm.end())
                end = len(sf.clean) if end == -1 else end + 1
                decls.append((mm.group(1), const_kind, sf,
                              (mm.start(), end), sf.line_of(mm.start(1))))
        span = _find_block(
            sf.clean, re.compile(r"\bstruct\s+%s\b[^;{]*" % re.escape(struct_name)))
        if span:
            start, op, cl = span
            body = sf.clean[op + 1:cl]
            for mm in MEMBER_RE.finditer(body):
                name = mm.group(1)
                if "(" in body[mm.start():mm.end()]:
                    continue  # member function, not a counter
                decls.append((name, "%s field" % struct_name, sf,
                              (op + 1 + mm.start(), op + 1 + mm.end()),
                              sf.line_of(op + 1 + mm.start(1))))
        span = _find_block(
            sf.clean, re.compile(r"\benum\s+(?:class\s+)?%s\b[^;{]*" % re.escape(enum_name)))
        if span:
            start, op, cl = span
            body = sf.clean[op + 1:cl]
            for mm in ENUMERATOR_RE.finditer(body):
                decls.append((mm.group(1), "%s enumerator" % enum_name, sf,
                              (op + 1 + mm.start(), op + 1 + mm.end()),
                              sf.line_of(op + 1 + mm.start(1))))
    for name, kind, decl_sf, (b0, b1), line in decls:
        rx = re.compile(r"\b%s\b" % re.escape(name))
        referenced = False
        for sf in files:
            for m in rx.finditer(sf.clean):
                if sf is decl_sf and b0 <= m.start() < b1:
                    continue
                referenced = True
                break
            if referenced:
                break
        if not referenced and not decl_sf.suppressed(line, "HL005"):
            diags.append(Diagnostic(
                "HL005", decl_sf.path, line,
                "%s '%s' is never referenced outside its declaration — "
                "dead telemetry" % (kind, name),
                "wire the counter into the code path that should maintain "
                "it, surface it in stats output, or delete it"))


# ---------------------------------------------------------------------------
# HL006 — untagged timers in the serving layer
# ---------------------------------------------------------------------------

TIMER_SITE_RE = re.compile(r"\bschedule_(?:at|after)\s*\(")


def _in_serve_layer(path):
    parts = _parts(path)
    return any(a == "src" and b == "serve" for a, b in zip(parts, parts[1:]))


def _top_level_commas(args):
    """Commas at nesting depth 0 of a call's argument span.  Lambdas,
    braced initializers and subscripts all open a deeper level, so their
    internal commas (captures, parameter lists, init elements) don't count."""
    depth = 0
    count = 0
    for ch in args:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "," and depth == 0:
            count += 1
    return count


def check_hl006(sf, diags):
    if not _in_serve_layer(sf.path):
        return
    for m in TIMER_SITE_RE.finditer(sf.clean):
        open_idx = m.end() - 1
        close_idx = _matching_paren(sf.clean, open_idx)
        span = sf.clean[open_idx + 1:close_idx]
        # (time, callback, tag) has two top-level commas; fewer means the
        # generation tag was omitted and the timer is uncancellable.
        if _top_level_commas(span) >= 2:
            continue
        line = sf.line_of(m.start())
        if sf.suppressed(line, "HL006"):
            continue
        diags.append(Diagnostic(
            "HL006", sf.path, line,
            "schedule_at/schedule_after in src/serve without a generation "
            "tag; an untagged timer cannot be cancelled and breaks the "
            "drained-server memory-flatness contract",
            "pass a sim::Engine::GenTag third argument (from "
            "Engine::new_generation()) so the owner can "
            "cancel_generation() it; a deliberately server-lifetime arm "
            "may be suppressed with // homp-lint: allow(HL006)"))


# ---------------------------------------------------------------------------
# HL007 — unordered-container iteration in export/digest/oracle paths
# ---------------------------------------------------------------------------

# Files whose output is expected to be byte-stable: the observability and
# fuzz layers (exports, digests, oracles) plus anything whose name says it
# serializes (report writers, metric exporters, trace/summary emitters).
HL007_BASENAME_TOKENS = (
    "report", "export", "metrics", "trace", "digest", "summary", "oracle")

UNORDERED_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?unordered_(?:multi)?(?:map|set)\s*<")
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(([^();]*):\s*((?:\w+(?:\.|->))*(\w+))\s*\)")


def _in_export_scope(path):
    parts = _parts(path)
    if any(a == "src" and b in ("obs", "fuzz")
           for a, b in zip(parts, parts[1:])):
        return True
    base = os.path.basename(path).lower()
    return any(tok in base for tok in HL007_BASENAME_TOKENS)


def _unordered_names(clean):
    """Variable/member names declared with an unordered container type in
    this file (declaration = `unordered_map<...> name`)."""
    names = set()
    n = len(clean)
    for m in UNORDERED_DECL_RE.finditer(clean):
        i = clean.find("<", m.start())
        depth, j = 0, i
        while j < n:
            if clean[j] == "<":
                depth += 1
            elif clean[j] == ">":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        if j >= n:
            continue
        mm = re.match(r"[\s&*]*(\w+)", clean[j + 1:])
        if mm and mm.group(1) not in ("const", "constexpr"):
            names.add(mm.group(1))
    return names


def check_hl007(sf, diags):
    if not _in_export_scope(sf.path):
        return
    unordered = _unordered_names(sf.clean)
    if not unordered:
        return
    for m in RANGE_FOR_RE.finditer(sf.clean):
        if m.group(3) not in unordered:
            continue
        line = sf.line_of(m.start())
        if sf.suppressed(line, "HL007"):
            continue
        diags.append(Diagnostic(
            "HL007", sf.path, line,
            "iteration over unordered container '%s' in an export/digest/"
            "oracle path; unordered order differs across standard libraries "
            "and hash seeds, so serialized output stops being byte-identical"
            % m.group(3),
            "use std::map/std::set, or copy the keys out and sort before "
            "iterating; a genuinely order-free fold (count, sum into a "
            "commutative accumulator) may be suppressed with "
            "// homp-lint: allow(HL007)"))


# ---------------------------------------------------------------------------
# HL008 — tracked-state writes from event lambdas bypassing dsan accessors
# ---------------------------------------------------------------------------

MUTATOR_METHODS = (
    "push_back|push_front|pop_back|pop_front|erase|insert|emplace\\w*"
    "|clear|resize|assign")


def load_dsan_roster(path):
    """Parse the [tracked] members list from dsan_cells.toml.  Returns []
    when the file does not exist (HL008 then has nothing to check)."""
    if not os.path.isfile(path):
        return []
    try:
        with open(path, "rb") as f:
            raw = f.read()
    except OSError as e:
        raise ConfigError("cannot read dsan roster %s: %s" % (path, e))
    try:
        import tomllib
        data = tomllib.loads(raw.decode("utf-8"))
        members = data.get("tracked", {}).get("members", [])
    except ModuleNotFoundError:
        members = _parse_roster_fallback(raw.decode("utf-8"), path)
    except Exception as e:  # tomllib.TOMLDecodeError
        raise ConfigError("malformed %s: %s" % (path, e))
    if not isinstance(members, list) or not all(
            isinstance(x, str) and x for x in members):
        raise ConfigError("%s: [tracked] members must be a list of "
                          "non-empty strings" % path)
    return sorted(set(members))


def _parse_roster_fallback(text, path):
    in_table = False
    buf = None
    for line in text.splitlines():
        line = line.split("#", 1)[0].rstrip()
        if not line:
            continue
        if re.match(r"^\s*\[tracked\]\s*$", line):
            in_table = True
            continue
        if re.match(r"^\s*\[", line):
            in_table = False
            continue
        if in_table:
            m = re.match(r"^\s*members\s*=\s*\[(.*)$", line)
            if m is not None:
                buf = m.group(1)
            elif buf is not None:
                buf += " " + line
            if buf is not None and "]" in buf:
                inner = buf[:buf.index("]")]
                return [t.strip().strip('"').strip("'")
                        for t in inner.split(",") if t.strip()]
    if buf is not None:
        raise ConfigError("%s: unterminated members list" % path)
    return []


def _matching_brace(clean, open_idx):
    depth = 0
    for i in range(open_idx, len(clean)):
        if clean[i] == "{":
            depth += 1
        elif clean[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(clean) - 1


def check_hl008(sf, diags, roster):
    if not roster:
        return
    mut_re = re.compile(
        r"\b(%s)\s*(?:\.|->)\s*(?:%s)\s*\(|\b(%s)\s*=(?!=)"
        % ("|".join(map(re.escape, roster)), MUTATOR_METHODS,
           "|".join(map(re.escape, roster))))
    for m in DEFERRED_SITE_RE.finditer(sf.clean):
        open_idx = m.end() - 1
        close_idx = _matching_paren(sf.clean, open_idx)
        args = sf.clean[open_idx + 1:close_idx]
        for lm in LAMBDA_INTRO_RE.finditer(args):
            body_open = args.find("{", lm.end())
            if body_open == -1:
                continue
            abs_open = open_idx + 1 + body_open
            abs_close = _matching_brace(sf.clean, abs_open)
            body = sf.clean[abs_open:abs_close + 1]
            for bm in mut_re.finditer(body):
                name = bm.group(1) or bm.group(2)
                line = sf.line_of(abs_open + bm.start())
                if sf.suppressed(line, "HL008"):
                    continue
                diags.append(Diagnostic(
                    "HL008", sf.path, line,
                    "event lambda mutates dsan-tracked state '%s' directly; "
                    "the write bypasses the tracked accessor, so homp-dsan "
                    "cannot see it and the happens-before analysis is blind "
                    "to the conflict" % name,
                    "route the mutation through the owning object's accessor "
                    "method carrying HOMP_DSAN_WRITE (docs/DETERMINISM.md "
                    "\"Tracked cells\"), or update "
                    "tools/lint/dsan_cells.toml if the member is no longer "
                    "tracked"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_files(paths):
    files, errors = [], []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)  # explicit files are always scanned
        elif os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in SKIP_DIR_NAMES
                    and not d.startswith(SKIP_DIR_PREFIXES))
                for n in sorted(names):
                    if n.endswith(DEFAULT_EXTS):
                        files.append(os.path.join(root, n))
        else:
            errors.append(p)
    return files, errors


def _run_file_checks(sf, diags, enabled, strict, layers, roster):
    """Every per-file check (HL005 is cross-file and runs separately)."""
    if "HL001" in enabled:
        check_hl001(sf, diags, strict, exempt_tests=True)
    if "HL002" in enabled:
        check_hl002(sf, diags)
    if "HL003" in enabled:
        check_hl003(sf, diags, layers)
    if "HL004" in enabled:
        check_hl004(sf, diags)
    if "HL006" in enabled:
        check_hl006(sf, diags)
    if "HL007" in enabled:
        check_hl007(sf, diags)
    if "HL008" in enabled:
        check_hl008(sf, diags, roster)


def _scan_worker(task):
    """Pool worker: parse one file and run the per-file checks.  Returns
    (path, text, clean, diag_tuples, error) — plain picklable types; the
    parent reassembles SourceFile (for HL005) and Diagnostic objects."""
    path, enabled, strict, layers, roster = task
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return (path, None, None, [], str(e))
    sf = SourceFile(path, text)
    diags = []
    _run_file_checks(sf, diags, enabled, strict, layers, roster)
    return (path, text, sf.clean,
            [(d.check_id, d.path, d.line, d.message, d.hint) for d in diags],
            None)


def changed_files():
    """Paths touched relative to HEAD (staged, unstaged, and untracked),
    as git reports them — the --changed-only work list."""
    out = []
    for cmd in (["git", "diff", "--name-only", "HEAD", "--"],
                ["git", "ls-files", "--others", "--exclude-standard"]):
        try:
            r = subprocess.run(cmd, capture_output=True, text=True,
                               check=True)
        except (OSError, subprocess.CalledProcessError) as e:
            raise ConfigError("--changed-only needs a git checkout: %s" % e)
        out.extend(line.strip() for line in r.stdout.splitlines()
                   if line.strip())
    return set(os.path.normpath(p) for p in out)


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="homp_lint.py",
        description="HOMP project-invariant static analysis (HL001-HL008).")
    ap.add_argument("paths", nargs="*", default=[],
                    help="files or directories to scan (default: src tests)")
    ap.add_argument("--json", action="store_true",
                    help="emit machine-readable JSON on stdout")
    ap.add_argument("--config", default=None,
                    help="layer DAG TOML (default: layers.toml next to this "
                         "script)")
    ap.add_argument("--dsan-cells", default=None,
                    help="HL008 tracked-member roster TOML (default: "
                         "dsan_cells.toml next to this script)")
    ap.add_argument("--strict", action="store_true",
                    help="disable built-in path exemptions (HL001 under "
                         "tests/bench/examples); used by the fixture suite")
    ap.add_argument("--checks", default=",".join(sorted(CHECKS)),
                    help="comma-separated check IDs to run (default: all)")
    ap.add_argument("--jobs", type=int, default=0,
                    help="worker processes for the scan (0 = auto: one per "
                         "core, capped at 8; 1 = serial)")
    ap.add_argument("--changed-only", action="store_true",
                    help="scan only files git reports as changed relative "
                         "to HEAD (plus untracked); disables the cross-file "
                         "HL005 pass, which needs the whole tree.  CI runs "
                         "full-tree mode; this is the fast local loop")
    ap.add_argument("--telemetry-struct", default="DeviceStats")
    ap.add_argument("--telemetry-enum", default="RecoveryAction")
    ap.add_argument("--list-checks", action="store_true",
                    help="print the check catalog and exit")
    args = ap.parse_args(argv)

    if args.list_checks:
        for cid in sorted(CHECKS):
            print("%s  %s" % (cid, CHECKS[cid]))
        return 0

    enabled = {c.strip() for c in args.checks.split(",") if c.strip()}
    unknown = enabled - set(CHECKS)
    if unknown:
        print("homp-lint: unknown check id(s): %s" % ", ".join(sorted(unknown)),
              file=sys.stderr)
        return 2

    paths = args.paths or ["src", "tests"]
    script_dir = os.path.dirname(os.path.abspath(__file__))
    config = args.config or os.path.join(script_dir, "layers.toml")
    roster_path = args.dsan_cells or os.path.join(script_dir,
                                                  "dsan_cells.toml")
    try:
        layers = load_layers(config)
        roster = load_dsan_roster(roster_path) if "HL008" in enabled else []
    except ConfigError as e:
        print("homp-lint: %s" % e, file=sys.stderr)
        return 2

    file_paths, missing = collect_files(paths)
    if missing:
        print("homp-lint: no such file or directory: %s" % ", ".join(missing),
              file=sys.stderr)
        return 2

    if args.changed_only:
        try:
            changed = changed_files()
        except ConfigError as e:
            print("homp-lint: %s" % e, file=sys.stderr)
            return 2
        file_paths = [p for p in file_paths
                      if os.path.normpath(p) in changed
                      or os.path.normpath(os.path.relpath(p)) in changed]
        if "HL005" in enabled:
            # Dead-telemetry needs every reference site in the tree; a
            # partial scan would flag counters whose users simply were
            # not read.  CI's full-tree run keeps HL005 coverage.
            enabled.discard("HL005")
            print("homp-lint: --changed-only disables HL005 "
                  "(cross-file; needs the full tree)", file=sys.stderr)

    jobs = args.jobs if args.jobs > 0 else min(8, os.cpu_count() or 1)
    need_sources = "HL005" in enabled
    diags = []
    files = []
    if jobs > 1 and len(file_paths) > 8:
        tasks = [(p, enabled, args.strict, layers, roster)
                 for p in file_paths]
        with multiprocessing.Pool(jobs) as pool:
            results = pool.map(_scan_worker, tasks, chunksize=8)
        for path, text, clean, dtuples, err in results:
            if err is not None:
                print("homp-lint: cannot read %s: %s" % (path, err),
                      file=sys.stderr)
                return 2
            if need_sources:
                files.append(SourceFile(path, text, clean))
            diags.extend(Diagnostic(*t) for t in dtuples)
    else:
        for p in file_paths:
            try:
                with open(p, encoding="utf-8", errors="replace") as f:
                    sf = SourceFile(p, f.read())
            except OSError as e:
                print("homp-lint: cannot read %s: %s" % (p, e),
                      file=sys.stderr)
                return 2
            if need_sources:
                files.append(sf)
            _run_file_checks(sf, diags, enabled, args.strict, layers, roster)
    if "HL005" in enabled:
        check_hl005(files, diags, args.telemetry_struct, args.telemetry_enum)

    # Nested deferred sites can attribute one lambda to several enclosing
    # call spans; identical (file, line, check, message) rows are one finding.
    seen = set()
    unique = []
    for d in sorted(diags, key=lambda d: (d.path, d.line, d.check_id)):
        key = (d.path, d.line, d.check_id, d.message)
        if key not in seen:
            seen.add(key)
            unique.append(d)
    diags = unique
    if args.json:
        counts = {}
        for d in diags:
            counts[d.check_id] = counts.get(d.check_id, 0) + 1
        print(json.dumps({
            "version": 1,
            "files_scanned": len(file_paths),
            "diagnostics": [d.as_dict() for d in diags],
            "counts": counts,
        }, indent=2))
    else:
        for d in diags:
            print(d.render())
        if diags:
            print("homp-lint: %d diagnostic(s) in %d file(s) scanned"
                  % (len(diags), len(file_paths)), file=sys.stderr)
    return 1 if diags else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away; not a lint failure
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(1)
