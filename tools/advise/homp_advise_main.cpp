/// \file homp_advise_main.cpp
/// The homp-advise command-line driver (docs/OBSERVABILITY.md "The
/// offline advisor").
///
///   homp-advise report FILE... [--json] [--top N] [--bias-threshold X]
///   homp-advise diff A B [--tolerance R] [--json]
///
/// `report` ingests any mix of HOMP observability artifacts — decision
/// audits, serve audits, metrics registries, chrome traces — as one
/// session, runs the attribution engine, and prints the ranked findings.
/// `diff` compares two artifacts of the same kind (bench records,
/// metrics, audits) with direction-aware tolerance; the CI perf sentinel
/// runs it against the committed BENCH_engine.json.
///
/// Exit codes, report mode:  0 = no findings,
///                           1 = findings printed,
///                           2 = unusable input (unreadable, malformed,
///                               empty audit, no backfilled actuals).
/// Exit codes, diff mode:    0 = identical within tolerance,
///                           1 = regressions found,
///                           2 = unusable input.

#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "advise/attribution.h"
#include "advise/report.h"
#include "advise/session.h"
#include "common/error.h"

namespace {

void usage(std::ostream& os) {
  os << "usage: homp-advise report FILE... [options]\n"
        "       homp-advise diff A B [options]\n"
        "\n"
        "report: attribute performance loss across one or more runs'\n"
        "observability artifacts (decision audits, serve audits, metrics,\n"
        "chrome traces, in any mix) and print ranked findings.\n"
        "  --json              machine-readable report\n"
        "  --top N             print only the top N findings\n"
        "  --bias-threshold X  under/over-prediction fires at\n"
        "                      actual/predicted >= X (default 1.5)\n"
        "\n"
        "diff: compare two artifacts of the same kind (bench record,\n"
        "metrics, audit); direction-aware, throughput down or latency up\n"
        "past tolerance is a regression.\n"
        "  --tolerance R       relative tolerance (default 0.15)\n"
        "  --json              machine-readable verdict\n";
}

double parse_double(const std::string& flag, const char* value) {
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == nullptr || *end != '\0') {
    throw homp::ConfigError(flag + " needs a number, got '" +
                            std::string(value) + "'");
  }
  return v;
}

int run_report(const std::vector<std::string>& files, bool json,
               std::size_t top, const homp::advise::AttributionOptions& opt) {
  using namespace homp::advise;
  if (files.empty()) {
    throw homp::ConfigError("report needs at least one artifact file");
  }
  Session session;
  for (const std::string& f : files) session.load(f);
  HOMP_REQUIRE(!session.runs.empty() || !session.serve_runs.empty() ||
                   !session.traces.empty(),
               "session holds no audits or traces to attribute (metrics "
               "alone carry no decision evidence)");

  // An offload session whose decision streams never saw a backfilled
  // actual cannot be attributed at all — refuse loudly rather than
  // printing an empty report that reads as "all clear".
  if (!session.runs.empty()) {
    bool any_actual = false;
    for (const RunAudit& run : session.runs) {
      for (const AuditDecision& d : run.decisions) {
        if (d.kind == "chunk-assigned" && d.actual_s > 0.0) {
          any_actual = true;
          break;
        }
      }
    }
    HOMP_REQUIRE(any_actual,
                 "no decision in any audit carries a backfilled actual_s; "
                 "rerun the offload to completion with collect_audit");
  }

  const std::vector<Inspection> findings = attribute(session, opt);
  if (json) {
    write_report_json(findings, std::cout, top);
  } else {
    write_report(findings, std::cout, top);
  }
  return findings.empty() ? 0 : 1;
}

int run_diff(const std::string& a, const std::string& b, double tolerance,
             bool json) {
  using namespace homp::advise;
  const Json before = Json::parse_file(a);
  const Json after = Json::parse_file(b);
  const DiffResult r = diff_artifacts(before, after, tolerance);
  if (json) {
    write_diff_json(r, tolerance, std::cout);
  } else {
    write_diff(r, tolerance, std::cout);
  }
  return r.regressions.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      usage(std::cerr);
      return 2;
    }
    const std::string mode = argv[1];
    if (mode == "--help" || mode == "-h") {
      usage(std::cout);
      return 0;
    }

    bool json = false;
    std::size_t top = 0;
    double tolerance = 0.15;
    homp::advise::AttributionOptions opt;
    std::vector<std::string> files;

    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> const char* {
        if (i + 1 >= argc) {
          throw homp::ConfigError(arg + " needs a value");
        }
        return argv[++i];
      };
      if (arg == "--json") {
        json = true;
      } else if (arg == "--top") {
        top = static_cast<std::size_t>(parse_double(arg, value()));
      } else if (arg == "--bias-threshold") {
        opt.bias_threshold = parse_double(arg, value());
        HOMP_REQUIRE(opt.bias_threshold > 1.0,
                     "--bias-threshold must be > 1");
      } else if (arg == "--tolerance") {
        tolerance = parse_double(arg, value());
        HOMP_REQUIRE(tolerance >= 0.0, "--tolerance must be >= 0");
      } else if (arg == "--help" || arg == "-h") {
        usage(std::cout);
        return 0;
      } else if (!arg.empty() && arg[0] == '-') {
        throw homp::ConfigError("unknown argument '" + arg + "'");
      } else {
        files.push_back(arg);
      }
    }

    if (mode == "report") {
      return run_report(files, json, top, opt);
    }
    if (mode == "diff") {
      if (files.size() != 2) {
        throw homp::ConfigError("diff needs exactly two files");
      }
      return run_diff(files[0], files[1], tolerance, json);
    }
    throw homp::ConfigError("unknown mode '" + mode +
                            "' (report or diff)");
  } catch (const std::exception& e) {
    std::cerr << "homp-advise: " << e.what() << "\n";
    return 2;
  }
}
