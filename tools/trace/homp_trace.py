#!/usr/bin/env python3
"""homp-trace: offline analysis of HOMP offload traces and metrics.

Reads the Chrome trace-event JSON written by write_chrome_trace() and the
metrics JSON written by write_metrics_file() / MetricsRegistry::write_json
(docs/OBSERVABILITY.md). Stdlib only.

Usage:
  homp_trace.py report TRACE.json [--metrics METRICS.json] [--timeline]
  homp_trace.py diff A B [--tolerance REL]

`report` prints a machine-parseable summary, one `key: value` per line:
critical path, compute/transfer overlap ratio, barrier skew, load
imbalance percent (same definition as Imbalance::percent() in the
runtime), fault/recovery/decision counts, and counter-track summaries.
Multi-tenant serving traces (serve::ServeReport::write_trace_json lays
tenants out as trace processes, named via process_name metadata) get an
additional per-tenant section: span/thread counts, busy time, critical
path, makespan and finish-time imbalance per tenant.

`diff` compares two runs — two traces or two metrics files (detected by
content) — and prints every key whose value differs beyond the relative
tolerance. Exit status: 0 identical, 1 differences, 2 usage/input error.
"""

import argparse
import json
import sys

US = 1e6  # trace timestamps are microseconds of virtual time


def fail(msg):
    print("homp-trace: error: %s" % msg, file=sys.stderr)
    sys.exit(2)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        fail("cannot read %s: %s" % (path, e))
    except json.JSONDecodeError as e:
        fail("%s is not valid JSON: %s" % (path, e))


def is_metrics(doc):
    return isinstance(doc, dict) and "homp_metrics_version" in doc


def fmt(v):
    """Stable numeric rendering: integers bare, floats to 12 significant
    digits — enough for derived figures to agree with the runtime's own
    doubles at the tolerances the test suite asserts."""
    if isinstance(v, bool):
        return str(v).lower()
    if isinstance(v, float):
        if v == int(v) and abs(v) < 1e15:
            return str(int(v))
        return "%.12g" % v
    return str(v)


# ---- interval helpers ----------------------------------------------------


def union(intervals):
    """Merge [t0, t1) intervals; returns disjoint sorted list."""
    out = []
    for t0, t1 in sorted(intervals):
        if t1 <= t0:
            continue
        if out and t0 <= out[-1][1]:
            out[-1][1] = max(out[-1][1], t1)
        else:
            out.append([t0, t1])
    return out


def measure(intervals):
    return sum(t1 - t0 for t0, t1 in intervals)


def intersect(a, b):
    """Intersection measure of two disjoint sorted interval lists."""
    total, i, j = 0.0, 0, 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


# ---- trace analysis ------------------------------------------------------

TRANSFER_PHASES = ("copy-in", "copy-out")


def phase_of(ev):
    """Span phase = first word of the event name (write_chrome_trace
    emits "<phase> <label>")."""
    return ev.get("name", "").split(" ")[0]


def ev_field(e, key, kind):
    """Required event field, or a diagnosable exit instead of a KeyError
    traceback (degenerate traces from crashed runs routinely drop
    fields)."""
    if key not in e:
        fail("malformed %s event is missing '%s': %s"
             % (kind, key, json.dumps(e)[:120]))
    return e[key]


def summarize_trace(events):
    if not isinstance(events, list):
        fail("trace is not a JSON array of events")
    if not events:
        fail("trace is empty (zero events)")
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail("event %d is not an object: %s"
                 % (i, json.dumps(e)[:120]))
    spans = [e for e in events if e.get("ph") == "X"]
    instants = [e for e in events if e.get("ph") == "i"]
    counters = [e for e in events if e.get("ph") == "C"]
    for e in spans:
        tid, ts = ev_field(e, "tid", "span"), ev_field(e, "ts", "span")
        if not isinstance(tid, int) or isinstance(tid, bool):
            fail("span event has non-integer tid: %s" % json.dumps(e)[:120])
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            fail("span event has non-numeric ts: %s" % json.dumps(e)[:120])
    names = {}  # tid -> device name from thread_name metadata
    tenants = {}  # pid -> tenant name from process_name metadata
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            names[e.get("tid")] = e.get("args", {}).get("name", "")
        elif e.get("ph") == "M" and e.get("name") == "process_name":
            tenants[e.get("pid")] = e.get("args", {}).get("name", "")
    for e in spans:
        pid = e.get("pid", 0)
        if not isinstance(pid, int) or isinstance(pid, bool):
            fail("span event has non-integer pid: %s" % json.dumps(e)[:120])
    if not spans:
        fail("trace contains no spans")

    slots = sorted({e["tid"] for e in spans})
    device = {t: names.get(t, "slot %d" % t) for t in slots}

    # Per-slot interval sets and finish times.
    finish, computes, transfers, busy, per_phase = {}, {}, {}, {}, {}
    for t in slots:
        computes[t], transfers[t], busy[t] = [], [], []
    for e in spans:
        t, ph = e["tid"], phase_of(e)
        t0, t1 = e["ts"], e["ts"] + e.get("dur", 0.0)
        per_phase.setdefault(ph, 0.0)
        per_phase[ph] += t1 - t0
        if ph == "barrier":
            # The final-barrier span starts when the device arrived at the
            # barrier: its ts is the device's finish time.
            if e.get("name", "").endswith("final"):
                finish[t] = t0
            continue
        busy[t].append((t0, t1))
        if ph == "compute":
            computes[t].append((t0, t1))
        elif ph in TRANSFER_PHASES:
            transfers[t].append((t0, t1))
    for t in slots:
        if t not in finish:  # quarantined at end: no final-barrier span
            finish[t] = max((hi for _, hi in busy[t]), default=0.0)

    total_time = max(e["ts"] + e.get("dur", 0.0) for e in spans)

    # Imbalance over participating devices (>= 1 compute span), matching
    # OffloadResult::imbalance() / Imbalance::percent().
    participating = [t for t in slots if computes[t]]
    fins = [finish[t] for t in participating]
    imb = 0.0
    if fins and max(fins) > 0:
        imb = (max(fins) - sum(fins) / len(fins)) / max(fins) * 100.0

    # Critical path: the slowest participating device and its busy
    # composition (everything else waits for it at the final barrier).
    crit = max(participating, key=lambda t: finish[t]) if participating \
        else slots[0]
    crit_phases = {}
    for e in spans:
        if e["tid"] != crit:
            continue
        ph = phase_of(e)
        if ph == "barrier":
            continue
        crit_phases.setdefault(ph, 0.0)
        crit_phases[ph] += e.get("dur", 0.0)

    # Compute/transfer overlap: fraction of transfer time hidden behind
    # same-device compute (the double-buffering win, paper §VI-A).
    tr_total, tr_hidden = 0.0, 0.0
    for t in slots:
        tr = union(transfers[t])
        tr_total += measure(tr)
        tr_hidden += intersect(tr, union(computes[t]))

    cats = {}
    for e in instants:
        cats.setdefault(e.get("cat", "?"), []).append(e)

    summary = {
        "events": len(events),
        "devices": len(slots),
        "total_time_us": total_time,
        "critical_device": device[crit],
        "critical_path_us": finish[crit],
        "critical_busy_us": measure(union(busy[crit])),
        "barrier_skew_us": (max(fins) - min(fins)) if fins else 0.0,
        "imbalance_pct": imb,
        "transfer_us": tr_total,
        "transfer_hidden_us": tr_hidden,
        "overlap_ratio": (tr_hidden / tr_total) if tr_total > 0 else 0.0,
        "faults": len(cats.get("fault", [])),
        "recovery_actions": len(cats.get("recovery", [])),
        "decisions": len(cats.get("decision", [])),
    }
    for ph in sorted(crit_phases):
        summary["critical_phase_us[%s]" % ph] = crit_phases[ph]
    for ph in sorted(per_phase):
        summary["phase_us[%s]" % ph] = per_phase[ph]

    # Per-tenant sections for multi-tenant serving traces: grouping is
    # by the span's trace process (pid). Single-offload traces (every
    # span on pid 0, no process metadata) skip this entirely, so their
    # report output is unchanged.
    span_pids = {e.get("pid", 0) for e in spans}
    if tenants or len(span_pids) > 1:
        by_pid = {}
        for e in spans:
            by_pid.setdefault(e.get("pid", 0), []).append(e)
        summary["tenants"] = len(by_pid)
        for pid in sorted(by_pid):
            label = tenants.get(pid) or ("pid %d" % pid)
            evs = by_pid[pid]
            per_tid = {}
            for e in evs:
                per_tid.setdefault(e["tid"], []).append(
                    (e["ts"], e["ts"] + e.get("dur", 0.0)))
            fins = [max(hi for _, hi in iv) for iv in per_tid.values()]
            start = min(e["ts"] for e in evs)
            # Finish-time imbalance across the tenant's job threads,
            # same shape as the global Imbalance::percent() figure.
            t_imb = 0.0
            if fins and max(fins) > 0:
                t_imb = ((max(fins) - sum(fins) / len(fins))
                         / max(fins) * 100.0)
            pre = "tenant[%s]" % label
            summary[pre + ".spans"] = len(evs)
            summary[pre + ".threads"] = len(per_tid)
            summary[pre + ".busy_us"] = sum(
                measure(union(iv)) for iv in per_tid.values())
            summary[pre + ".critical_path_us"] = max(fins)
            summary[pre + ".makespan_us"] = max(fins) - start
            summary[pre + ".imbalance_pct"] = t_imb

    # Failed/cancelled-jobs section for serving traces: the serve layer
    # records terminal outcomes as instant events (cat "serve") named
    # "fail" / "cancel", whose detail leads with the error class
    # ("all_devices_lost: ...", docs/SERVING.md "Job failure domains").
    # Breaker trips ride along as "breaker-open" instants. Single-offload
    # traces carry no serve events, so their report output is unchanged.
    serve_evs = cats.get("serve", [])
    kinds = {"fail": "failed", "cancel": "cancelled"}
    terminal = [e for e in serve_evs if e.get("name") in kinds]
    if terminal or any(e.get("name") == "breaker-open" for e in serve_evs):
        counts = {"failed": 0, "cancelled": 0}
        classes = {}
        lines = []
        for e in terminal:
            kind = kinds[e["name"]]
            counts[kind] += 1
            a = e.get("args", {})
            detail = " ".join(str(a.get("detail", "")).split())
            cls = detail.split(":", 1)[0].strip() or "unspecified"
            tenant = tenants.get(e.get("pid", 0), "?")
            key = (kind, tenant, cls)
            classes[key] = classes.get(key, 0) + 1
            lines.append((kind, a.get("job", -1), tenant, detail))
        summary["serve.failed_jobs"] = counts["failed"]
        summary["serve.cancelled_jobs"] = counts["cancelled"]
        summary["serve.breaker_trips"] = sum(
            1 for e in serve_evs if e.get("name") == "breaker-open")
        for kind, tenant, cls in sorted(classes):
            summary["serve.%s[%s/%s]" % (kind, tenant, cls)] = (
                classes[(kind, tenant, cls)])
        for kind, job, tenant, detail in sorted(
                lines, key=lambda x: (x[0], str(x[1]))):
            summary["serve.%s_job[%s]" % (kind, job)] = (
                "tenant=%s %s" % (tenant, detail))

    tracks = {}
    for e in counters:
        v = e.get("args", {}).get("value", 0.0)
        st = tracks.setdefault(ev_field(e, "name", "counter"),
                               {"samples": 0, "last": 0.0,
                                "max": float("-inf")})
        st["samples"] += 1
        st["last"] = v
        st["max"] = max(st["max"], v)
    for name in sorted(tracks):
        st = tracks[name]
        summary["counter[%s]" % name] = "samples=%d last=%s max=%s" % (
            st["samples"], fmt(st["last"]), fmt(st["max"]))

    timeline = sorted(
        (ev_field(e, "ts", "instant"), e.get("tid", -1),
         e.get("cat", "?"), e.get("name", ""))
        for e in instants)
    return summary, timeline, device


def flatten_metrics(doc):
    out = {}
    metrics = doc.get("metrics", [])
    if not isinstance(metrics, list):
        fail("metrics file has a non-array 'metrics' field")
    for m in metrics:
        if not isinstance(m, dict) or "name" not in m:
            fail("malformed metrics entry (missing 'name'): %s"
                 % json.dumps(m)[:120])
        key = m["name"]
        if m.get("labels"):
            key += "{%s}" % m["labels"]
        if m.get("type") == "histogram":
            out[key + ".count"] = m.get("count", 0)
            out[key + ".sum"] = m.get("sum", 0.0)
        else:
            out[key] = m.get("value", 0.0)
    return out


# ---- commands ------------------------------------------------------------


def cmd_report(args):
    doc = load_json(args.trace)
    if is_metrics(doc):
        fail("%s is a metrics file; `report` wants a trace "
             "(pass metrics via --metrics)" % args.trace)
    summary, timeline, device = summarize_trace(doc)
    print("homp-trace report: %s" % args.trace)
    for key, val in summary.items():
        print("%s: %s" % (key, fmt(val)))
    if args.metrics:
        mdoc = load_json(args.metrics)
        if not is_metrics(mdoc):
            fail("%s is not a homp metrics file" % args.metrics)
        for key, val in sorted(flatten_metrics(mdoc).items()):
            print("metric[%s]: %s" % (key, fmt(val)))
    if args.timeline and timeline:
        print("timeline:")
        for ts, tid, cat, name in timeline:
            print("  t=%sus %s %s: %s" % (fmt(float(ts)),
                                          device.get(tid, tid), cat, name))
    return 0


def cmd_diff(args):
    a, b = load_json(args.a), load_json(args.b)
    if is_metrics(a) != is_metrics(b):
        fail("cannot diff a trace against a metrics file")
    if is_metrics(a):
        fa, fb = flatten_metrics(a), flatten_metrics(b)
    else:
        fa = summarize_trace(a)[0]
        fb = summarize_trace(b)[0]
    tol = args.tolerance
    diffs = 0
    for key in sorted(set(fa) | set(fb)):
        va, vb = fa.get(key), fb.get(key)
        if va == vb:
            continue
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            scale = max(abs(va), abs(vb))
            if scale > 0 and abs(va - vb) / scale <= tol:
                continue
        diffs += 1
        print("%s: %s -> %s" % (key, fmt(va) if va is not None else "absent",
                                fmt(vb) if vb is not None else "absent"))
    print("differing_keys: %d" % diffs)
    return 1 if diffs else 0


def main(argv=None):
    ap = argparse.ArgumentParser(prog="homp_trace.py",
                                 description=__doc__.split("\n")[0])
    sub = ap.add_subparsers(dest="cmd", required=True)

    rep = sub.add_parser("report", help="summarize one trace")
    rep.add_argument("trace")
    rep.add_argument("--metrics", help="append metrics JSON values")
    rep.add_argument("--timeline", action="store_true",
                     help="print the fault/recovery/decision timeline")
    rep.set_defaults(func=cmd_report)

    dif = sub.add_parser("diff", help="compare two traces or metrics files")
    dif.add_argument("a")
    dif.add_argument("b")
    dif.add_argument("--tolerance", type=float, default=0.0,
                     help="relative tolerance for numeric keys (default 0)")
    dif.set_defaults(func=cmd_diff)

    args = ap.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
