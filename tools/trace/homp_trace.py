#!/usr/bin/env python3
"""homp-trace: offline analysis of HOMP offload traces and metrics.

Reads the Chrome trace-event JSON written by write_chrome_trace() and the
metrics JSON written by write_metrics_file() / MetricsRegistry::write_json
(docs/OBSERVABILITY.md). Stdlib only.

Usage:
  homp_trace.py report TRACE.json [--metrics METRICS.json] [--timeline]
  homp_trace.py diff A B [--tolerance REL]
  homp_trace.py advise TRACE.json [--bias-threshold X] [--top N] [--json]

`report` prints a machine-parseable summary, one `key: value` per line:
critical path, compute/transfer overlap ratio, barrier skew, load
imbalance percent (same definition as Imbalance::percent() in the
runtime), fault/recovery/decision counts, and counter-track summaries.
Multi-tenant serving traces (serve::ServeReport::write_trace_json lays
tenants out as trace processes, named via process_name metadata) get an
additional per-tenant section: span/thread counts, busy time, critical
path, makespan and finish-time imbalance per tenant.

`diff` compares two runs — two traces or two metrics files (detected by
content) — and prints every key whose value differs beyond the relative
tolerance. Exit status: 0 identical, 1 differences, 2 usage/input error.

`advise` is the trace-only sibling of the homp-advise CLI: it mines the
decision-audit instants (MODEL_2 estimate vs backfilled actual) and the
span structure for under/over-prediction bias, per-device overlap
deficit, and critical-path blame, ranked by estimated saving. Exit
status: 0 no findings, 1 findings, 2 usage/input error.
"""

import argparse
import json
import sys

US = 1e6  # trace timestamps are microseconds of virtual time


def fail(msg):
    print("homp-trace: error: %s" % msg, file=sys.stderr)
    sys.exit(2)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        fail("cannot read %s: %s" % (path, e))
    except json.JSONDecodeError as e:
        fail("%s is not valid JSON: %s" % (path, e))


def is_metrics(doc):
    return isinstance(doc, dict) and "homp_metrics_version" in doc


def fmt(v):
    """Stable numeric rendering: integers bare, floats to 12 significant
    digits — enough for derived figures to agree with the runtime's own
    doubles at the tolerances the test suite asserts."""
    if isinstance(v, bool):
        return str(v).lower()
    if isinstance(v, float):
        if v == int(v) and abs(v) < 1e15:
            return str(int(v))
        return "%.12g" % v
    return str(v)


# ---- interval helpers ----------------------------------------------------


def union(intervals):
    """Merge [t0, t1) intervals; returns disjoint sorted list."""
    out = []
    for t0, t1 in sorted(intervals):
        if t1 <= t0:
            continue
        if out and t0 <= out[-1][1]:
            out[-1][1] = max(out[-1][1], t1)
        else:
            out.append([t0, t1])
    return out


def measure(intervals):
    return sum(t1 - t0 for t0, t1 in intervals)


def intersect(a, b):
    """Intersection measure of two disjoint sorted interval lists."""
    total, i, j = 0.0, 0, 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


# ---- trace analysis ------------------------------------------------------

TRANSFER_PHASES = ("copy-in", "copy-out")


def phase_of(ev):
    """Span phase = first word of the event name (write_chrome_trace
    emits "<phase> <label>")."""
    return ev.get("name", "").split(" ")[0]


def ev_field(e, key, kind):
    """Required event field, or a diagnosable exit instead of a KeyError
    traceback (degenerate traces from crashed runs routinely drop
    fields)."""
    if key not in e:
        fail("malformed %s event is missing '%s': %s"
             % (kind, key, json.dumps(e)[:120]))
    return e[key]


def summarize_trace(events):
    if not isinstance(events, list):
        fail("trace is not a JSON array of events")
    if not events:
        fail("trace is empty (zero events)")
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail("event %d is not an object: %s"
                 % (i, json.dumps(e)[:120]))
    spans = [e for e in events if e.get("ph") == "X"]
    instants = [e for e in events if e.get("ph") == "i"]
    counters = [e for e in events if e.get("ph") == "C"]
    for e in spans:
        tid, ts = ev_field(e, "tid", "span"), ev_field(e, "ts", "span")
        if not isinstance(tid, int) or isinstance(tid, bool):
            fail("span event has non-integer tid: %s" % json.dumps(e)[:120])
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            fail("span event has non-numeric ts: %s" % json.dumps(e)[:120])
    names = {}  # tid -> device name from thread_name metadata
    tenants = {}  # pid -> tenant name from process_name metadata
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            names[e.get("tid")] = e.get("args", {}).get("name", "")
        elif e.get("ph") == "M" and e.get("name") == "process_name":
            tenants[e.get("pid")] = e.get("args", {}).get("name", "")
    for e in spans:
        pid = e.get("pid", 0)
        if not isinstance(pid, int) or isinstance(pid, bool):
            fail("span event has non-integer pid: %s" % json.dumps(e)[:120])
    if not spans:
        fail("trace contains no spans")

    slots = sorted({e["tid"] for e in spans})
    device = {t: names.get(t, "slot %d" % t) for t in slots}

    # Per-slot interval sets and finish times.
    finish, computes, transfers, busy, per_phase = {}, {}, {}, {}, {}
    for t in slots:
        computes[t], transfers[t], busy[t] = [], [], []
    for e in spans:
        t, ph = e["tid"], phase_of(e)
        t0, t1 = e["ts"], e["ts"] + e.get("dur", 0.0)
        per_phase.setdefault(ph, 0.0)
        per_phase[ph] += t1 - t0
        if ph == "barrier":
            # The final-barrier span starts when the device arrived at the
            # barrier: its ts is the device's finish time.
            if e.get("name", "").endswith("final"):
                finish[t] = t0
            continue
        busy[t].append((t0, t1))
        if ph == "compute":
            computes[t].append((t0, t1))
        elif ph in TRANSFER_PHASES:
            transfers[t].append((t0, t1))
    for t in slots:
        if t not in finish:  # quarantined at end: no final-barrier span
            finish[t] = max((hi for _, hi in busy[t]), default=0.0)

    total_time = max(e["ts"] + e.get("dur", 0.0) for e in spans)

    # Imbalance over participating devices (>= 1 compute span), matching
    # OffloadResult::imbalance() / Imbalance::percent().
    participating = [t for t in slots if computes[t]]
    fins = [finish[t] for t in participating]
    imb = 0.0
    if fins and max(fins) > 0:
        imb = (max(fins) - sum(fins) / len(fins)) / max(fins) * 100.0

    # Critical path: the slowest participating device and its busy
    # composition (everything else waits for it at the final barrier).
    crit = max(participating, key=lambda t: finish[t]) if participating \
        else slots[0]
    crit_phases = {}
    for e in spans:
        if e["tid"] != crit:
            continue
        ph = phase_of(e)
        if ph == "barrier":
            continue
        crit_phases.setdefault(ph, 0.0)
        crit_phases[ph] += e.get("dur", 0.0)

    # Compute/transfer overlap: fraction of transfer time hidden behind
    # same-device compute (the double-buffering win, paper §VI-A).
    tr_total, tr_hidden = 0.0, 0.0
    for t in slots:
        tr = union(transfers[t])
        tr_total += measure(tr)
        tr_hidden += intersect(tr, union(computes[t]))

    cats = {}
    for e in instants:
        cats.setdefault(e.get("cat", "?"), []).append(e)

    summary = {
        "events": len(events),
        "devices": len(slots),
        "total_time_us": total_time,
        "critical_device": device[crit],
        "critical_path_us": finish[crit],
        "critical_busy_us": measure(union(busy[crit])),
        "barrier_skew_us": (max(fins) - min(fins)) if fins else 0.0,
        "imbalance_pct": imb,
        "transfer_us": tr_total,
        "transfer_hidden_us": tr_hidden,
        "overlap_ratio": (tr_hidden / tr_total) if tr_total > 0 else 0.0,
        "faults": len(cats.get("fault", [])),
        "recovery_actions": len(cats.get("recovery", [])),
        "decisions": len(cats.get("decision", [])),
    }
    for ph in sorted(crit_phases):
        summary["critical_phase_us[%s]" % ph] = crit_phases[ph]
    for ph in sorted(per_phase):
        summary["phase_us[%s]" % ph] = per_phase[ph]

    # Per-tenant sections for multi-tenant serving traces: grouping is
    # by the span's trace process (pid). Single-offload traces (every
    # span on pid 0, no process metadata) skip this entirely, so their
    # report output is unchanged.
    span_pids = {e.get("pid", 0) for e in spans}
    if tenants or len(span_pids) > 1:
        by_pid = {}
        for e in spans:
            by_pid.setdefault(e.get("pid", 0), []).append(e)
        summary["tenants"] = len(by_pid)
        for pid in sorted(by_pid):
            label = tenants.get(pid) or ("pid %d" % pid)
            evs = by_pid[pid]
            per_tid = {}
            for e in evs:
                per_tid.setdefault(e["tid"], []).append(
                    (e["ts"], e["ts"] + e.get("dur", 0.0)))
            fins = [max(hi for _, hi in iv) for iv in per_tid.values()]
            start = min(e["ts"] for e in evs)
            # Finish-time imbalance across the tenant's job threads,
            # same shape as the global Imbalance::percent() figure.
            t_imb = 0.0
            if fins and max(fins) > 0:
                t_imb = ((max(fins) - sum(fins) / len(fins))
                         / max(fins) * 100.0)
            pre = "tenant[%s]" % label
            summary[pre + ".spans"] = len(evs)
            summary[pre + ".threads"] = len(per_tid)
            summary[pre + ".busy_us"] = sum(
                measure(union(iv)) for iv in per_tid.values())
            summary[pre + ".critical_path_us"] = max(fins)
            summary[pre + ".makespan_us"] = max(fins) - start
            summary[pre + ".imbalance_pct"] = t_imb

    # Failed/cancelled-jobs section for serving traces: the serve layer
    # records terminal outcomes as instant events (cat "serve") named
    # "fail" / "cancel", whose detail leads with the error class
    # ("all_devices_lost: ...", docs/SERVING.md "Job failure domains").
    # Breaker trips ride along as "breaker-open" instants. Single-offload
    # traces carry no serve events, so their report output is unchanged.
    serve_evs = cats.get("serve", [])
    kinds = {"fail": "failed", "cancel": "cancelled"}
    terminal = [e for e in serve_evs if e.get("name") in kinds]
    if terminal or any(e.get("name") == "breaker-open" for e in serve_evs):
        counts = {"failed": 0, "cancelled": 0}
        classes = {}
        lines = []
        for e in terminal:
            kind = kinds[e["name"]]
            counts[kind] += 1
            a = e.get("args", {})
            detail = " ".join(str(a.get("detail", "")).split())
            cls = detail.split(":", 1)[0].strip() or "unspecified"
            tenant = tenants.get(e.get("pid", 0), "?")
            key = (kind, tenant, cls)
            classes[key] = classes.get(key, 0) + 1
            lines.append((kind, a.get("job", -1), tenant, detail))
        summary["serve.failed_jobs"] = counts["failed"]
        summary["serve.cancelled_jobs"] = counts["cancelled"]
        summary["serve.breaker_trips"] = sum(
            1 for e in serve_evs if e.get("name") == "breaker-open")
        for kind, tenant, cls in sorted(classes):
            summary["serve.%s[%s/%s]" % (kind, tenant, cls)] = (
                classes[(kind, tenant, cls)])
        for kind, job, tenant, detail in sorted(
                lines, key=lambda x: (x[0], str(x[1]))):
            summary["serve.%s_job[%s]" % (kind, job)] = (
                "tenant=%s %s" % (tenant, detail))

    tracks = {}
    for e in counters:
        v = e.get("args", {}).get("value", 0.0)
        st = tracks.setdefault(ev_field(e, "name", "counter"),
                               {"samples": 0, "last": 0.0,
                                "max": float("-inf")})
        st["samples"] += 1
        st["last"] = v
        st["max"] = max(st["max"], v)
    for name in sorted(tracks):
        st = tracks[name]
        summary["counter[%s]" % name] = "samples=%d last=%s max=%s" % (
            st["samples"], fmt(st["last"]), fmt(st["max"]))

    timeline = sorted(
        (ev_field(e, "ts", "instant"), e.get("tid", -1),
         e.get("cat", "?"), e.get("name", ""))
        for e in instants)
    return summary, timeline, device


def flatten_metrics(doc):
    out = {}
    metrics = doc.get("metrics", [])
    if not isinstance(metrics, list):
        fail("metrics file has a non-array 'metrics' field")
    for m in metrics:
        if not isinstance(m, dict) or "name" not in m:
            fail("malformed metrics entry (missing 'name'): %s"
                 % json.dumps(m)[:120])
        key = m["name"]
        if m.get("labels"):
            key += "{%s}" % m["labels"]
        if m.get("type") == "histogram":
            out[key + ".count"] = m.get("count", 0)
            out[key + ".sum"] = m.get("sum", 0.0)
        else:
            out[key] = m.get("value", 0.0)
    return out


# ---- trace-side attribution (the advisor's trace-only sibling) -----------


def device_finishes(events):
    """Per-tid finish time in us, by summarize_trace's rule: a device's
    final-barrier span starts when it arrived, so that ts is its finish;
    devices without one (quarantined at the end) finish at their last
    busy span's end."""
    spans = [e for e in events if e.get("ph") == "X"]
    finish, busy_hi = {}, {}
    for e in spans:
        t = e["tid"]
        t0, t1 = e["ts"], e["ts"] + e.get("dur", 0.0)
        ph = phase_of(e)
        if ph == "barrier":
            if e.get("name", "").endswith("final"):
                finish[t] = t0
            continue
        busy_hi[t] = max(busy_hi.get(t, 0.0), t1)
    for t, hi in busy_hi.items():
        finish.setdefault(t, hi)
    return finish


def advise_trace(events, bias_threshold):
    """Mine the decision instants and span structure of one trace for the
    same finding kinds homp-advise computes from a decision audit:
    under/over-prediction bias, per-device overlap deficit, and
    critical-path blame. Returns findings ranked by estimated saving
    (us), severity, kind, device."""
    summary, _, device = summarize_trace(events)
    spans = [e for e in events if e.get("ph") == "X"]
    decisions = [e for e in events
                 if e.get("ph") == "i" and e.get("cat") == "decision"]
    makespan = summary["total_time_us"]
    findings = []

    # Prediction bias per device, from chunk-assigned decision instants
    # carrying both a MODEL_2 estimate and a backfilled actual.
    acc = {}  # tid -> [actual_sum, model2_sum, n]
    for e in decisions:
        if not e.get("name", "").startswith("decision: chunk-assigned"):
            continue
        a = e.get("args", {})
        actual, model2 = a.get("actual_s", -1.0), a.get("model2_s", -1.0)
        if not isinstance(actual, (int, float)) or actual <= 0:
            continue
        if not isinstance(model2, (int, float)) or model2 <= 0:
            continue
        st = acc.setdefault(e.get("tid", -1), [0.0, 0.0, 0])
        st[0] += actual
        st[1] += model2
        st[2] += 1

    finish = device_finishes(events)
    computes = {}
    for e in spans:
        if phase_of(e) == "compute":
            computes.setdefault(e["tid"], True)
    participating = sorted(t for t in finish if t in computes)

    def severity_for(saving_us):
        return "critical" if makespan > 0 and saving_us >= 0.10 * makespan \
            else "warning"

    for tid in sorted(acc):
        actual, predicted, n = acc[tid]
        if predicted <= 0:
            continue
        bias = actual / predicted
        dev = device.get(tid, "slot %d" % tid)
        others = [finish[t] for t in participating if t != tid]
        mean_others = sum(others) / len(others) if others else 0.0
        if bias >= bias_threshold:
            saving = max(0.0, finish.get(tid, 0.0) - mean_others)
            findings.append({
                "kind": "under_prediction", "severity": severity_for(saving),
                "device": dev, "saving_us": saving,
                "evidence": "ran %sx slower than MODEL_2 predicted over %d "
                            "chunks; finished at %sus vs %sus mean of the "
                            "other devices"
                            % (fmt(bias), n, fmt(finish.get(tid, 0.0)),
                               fmt(mean_others)),
                "knob": "re-profile %s or switch to a guided/dynamic "
                        "schedule so the EWMA corrects mid-run" % dev,
            })
        elif bias <= 1.0 / bias_threshold:
            saving = max(0.0, makespan - finish.get(tid, 0.0)) * (1.0 - bias)
            findings.append({
                "kind": "over_prediction", "severity": "info",
                "device": dev, "saving_us": saving,
                "evidence": "ran %sx faster than MODEL_2 predicted over %d "
                            "chunks; idle after %sus of a %sus run"
                            % (fmt(1.0 / bias), n,
                               fmt(finish.get(tid, 0.0)), fmt(makespan)),
                "knob": "raise %s's share (model is pessimistic): "
                        "re-profile it or lower its modelled transfer "
                        "cost" % dev,
            })

    # Per-device overlap deficit: transfer time not hidden behind the
    # device's own compute.
    tr_iv, cp_iv = {}, {}
    for e in spans:
        ph = phase_of(e)
        iv = (e["ts"], e["ts"] + e.get("dur", 0.0))
        if ph in TRANSFER_PHASES:
            tr_iv.setdefault(e["tid"], []).append(iv)
        elif ph == "compute":
            cp_iv.setdefault(e["tid"], []).append(iv)
    for tid in sorted(tr_iv):
        tr = union(tr_iv[tid])
        total = measure(tr)
        hidden = intersect(tr, union(cp_iv.get(tid, [])))
        exposed = total - hidden
        if total <= 0 or exposed <= 0.25 * total:
            continue
        if exposed < 0.01 * makespan:
            continue
        dev = device.get(tid, "slot %d" % tid)
        findings.append({
            "kind": "overlap_deficit",
            "severity": "warning" if makespan > 0
                        and exposed >= 0.10 * makespan else "info",
            "device": dev, "saving_us": exposed,
            "evidence": "%sus of %sus transfer on %s ran exposed (not "
                        "overlapped with its compute)"
                        % (fmt(exposed), fmt(total), dev),
            "knob": "deepen pipelining for %s: smaller chunks or more "
                    "in-flight chunks so copy-in hides behind compute" % dev,
        })

    # Critical-path blame: the device gating the final barrier.
    if len(participating) >= 2:
        ordered = sorted(participating, key=lambda t: finish[t])
        worst, second = ordered[-1], ordered[-2]
        gap = finish[worst] - finish[second]
        if gap > 0:
            dev = device.get(worst, "slot %d" % worst)
            findings.append({
                "kind": "critical_path_blame", "severity": "info",
                "device": dev, "saving_us": gap,
                "evidence": "%s gates the makespan: finished %sus after "
                            "the next-latest device (%sus vs %sus)"
                            % (dev, fmt(gap), fmt(finish[worst]),
                               fmt(finish[second])),
                "knob": "shift weight off %s or use guided chunking so "
                        "trailing chunks shrink" % dev,
            })

    sev_rank = {"critical": 3, "warning": 2, "info": 1}
    findings.sort(key=lambda f: (-f["saving_us"],
                                 -sev_rank.get(f["severity"], 0),
                                 f["kind"], f["device"]))
    return findings


# ---- commands ------------------------------------------------------------


def cmd_report(args):
    doc = load_json(args.trace)
    if is_metrics(doc):
        fail("%s is a metrics file; `report` wants a trace "
             "(pass metrics via --metrics)" % args.trace)
    summary, timeline, device = summarize_trace(doc)
    print("homp-trace report: %s" % args.trace)
    for key, val in summary.items():
        print("%s: %s" % (key, fmt(val)))
    if args.metrics:
        mdoc = load_json(args.metrics)
        if not is_metrics(mdoc):
            fail("%s is not a homp metrics file" % args.metrics)
        for key, val in sorted(flatten_metrics(mdoc).items()):
            print("metric[%s]: %s" % (key, fmt(val)))
    if args.timeline and timeline:
        print("timeline:")
        for ts, tid, cat, name in timeline:
            print("  t=%sus %s %s: %s" % (fmt(float(ts)),
                                          device.get(tid, tid), cat, name))
    return 0


def cmd_diff(args):
    a, b = load_json(args.a), load_json(args.b)
    if is_metrics(a) != is_metrics(b):
        fail("cannot diff a trace against a metrics file")
    if is_metrics(a):
        fa, fb = flatten_metrics(a), flatten_metrics(b)
    else:
        fa = summarize_trace(a)[0]
        fb = summarize_trace(b)[0]
    tol = args.tolerance
    diffs = 0
    for key in sorted(set(fa) | set(fb)):
        va, vb = fa.get(key), fb.get(key)
        if va == vb:
            continue
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            scale = max(abs(va), abs(vb))
            if scale > 0 and abs(va - vb) / scale <= tol:
                continue
        diffs += 1
        print("%s: %s -> %s" % (key, fmt(va) if va is not None else "absent",
                                fmt(vb) if vb is not None else "absent"))
    print("differing_keys: %d" % diffs)
    return 1 if diffs else 0


def cmd_advise(args):
    doc = load_json(args.trace)
    if is_metrics(doc):
        fail("%s is a metrics file; `advise` wants a trace (for audit or "
             "metrics evidence use the homp-advise CLI)" % args.trace)
    findings = advise_trace(doc, args.bias_threshold)
    if args.top > 0:
        findings = findings[:args.top]
    if args.json:
        print(json.dumps({"homp_trace_advise_version": 1,
                          "findings": findings}, indent=2))
    elif not findings:
        print("homp-trace advise: no findings on this trace's evidence.")
    else:
        print("homp-trace advise: %d finding%s, ranked by estimated saving"
              % (len(findings), "" if len(findings) == 1 else "s"))
        for i, f in enumerate(findings):
            print("\n%d. [%s] %s @ %s  (est. saving %sus)"
                  % (i + 1, f["severity"], f["kind"], f["device"],
                     fmt(f["saving_us"])))
            print("   evidence: %s" % f["evidence"])
            print("   knob: %s" % f["knob"])
    return 1 if findings else 0


def main(argv=None):
    ap = argparse.ArgumentParser(prog="homp_trace.py",
                                 description=__doc__.split("\n")[0])
    sub = ap.add_subparsers(dest="cmd", required=True)

    rep = sub.add_parser("report", help="summarize one trace")
    rep.add_argument("trace")
    rep.add_argument("--metrics", help="append metrics JSON values")
    rep.add_argument("--timeline", action="store_true",
                     help="print the fault/recovery/decision timeline")
    rep.set_defaults(func=cmd_report)

    dif = sub.add_parser("diff", help="compare two traces or metrics files")
    dif.add_argument("a")
    dif.add_argument("b")
    dif.add_argument("--tolerance", type=float, default=0.0,
                     help="relative tolerance for numeric keys (default 0)")
    dif.set_defaults(func=cmd_diff)

    adv = sub.add_parser("advise",
                         help="attribute makespan loss from one trace's "
                              "decision instants and span structure")
    adv.add_argument("trace")
    adv.add_argument("--bias-threshold", type=float, default=1.5,
                     help="under/over-prediction fires at actual/predicted"
                          " >= X (default 1.5)")
    adv.add_argument("--top", type=int, default=0,
                     help="print only the top N findings")
    adv.add_argument("--json", action="store_true",
                     help="machine-readable findings")
    adv.set_defaults(func=cmd_advise)

    args = ap.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
