/// \file homp_fuzz_main.cpp
/// The homp-fuzz command-line driver (docs/FUZZING.md).
///
///   homp-fuzz --seed N --count M [--max-devices K] [--repro-dir DIR]
///             [--summary-out FILE] [--no-shrink] [--plant corrupt-commit]
///   homp-fuzz --serve --seed N --count M [--max-tenants T] [--max-jobs J]
///             [--repro-dir DIR] [--summary-out FILE] [--no-shrink]
///   homp-fuzz --replay FILE.toml
///
/// --replay sniffs the repro file: a [serve] section replays through the
/// serve-mode oracle, anything else through the single-offload
/// differential oracle.
///
/// Exit codes, corpus mode:   0 = no invariant violations,
///                            1 = violations found (repros written),
///                            2 = unusable configuration.
/// Exit codes, replay mode:   0 = the recorded violation reproduced,
///                            1 = it did NOT reproduce,
///                            2 = unreadable/malformed repro file.

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "fuzz/driver.h"
#include "fuzz/serve_driver.h"
#include "sim/dsan.h"

namespace {

void usage(std::ostream& os) {
  os << "usage: homp-fuzz --seed N --count M [options]\n"
        "       homp-fuzz --serve --seed N --count M [options]\n"
        "       homp-fuzz --replay FILE.toml\n"
        "\n"
        "corpus options:\n"
        "  --seed N           first scenario seed (default 1)\n"
        "  --count M          scenarios to run (default 100)\n"
        "  --max-devices K    device cap incl. host (default 6; serve: 5)\n"
        "  --repro-dir DIR    where repro files go (default machines/fuzz)\n"
        "  --summary-out F    also write the summary JSON to F\n"
        "  --no-shrink        emit failing scenarios unminimized\n"
        "  --plant corrupt-commit\n"
        "                     plant the acceptance-test violation into\n"
        "                     every scenario (integrity off + scripted\n"
        "                     silent compute corruption)\n"
        "  --plant dsan-conflict\n"
        "                     plant a same-timestamp write-write conflict\n"
        "                     the determinism sanitizer must catch\n"
        "                     (implies --dsan; not a serve-mode option)\n"
        "  --dsan             sweep the corpus under homp-dsan\n"
        "                     (docs/DETERMINISM.md): same-timestamp\n"
        "                     conflicts become dsan-determinism failures\n"
        "                     and dsan-repro-<seed> files; works in both\n"
        "                     corpus modes\n"
        "\n"
        "serve mode (--serve): multi-tenant server scenarios checked\n"
        "against the serve-invariant catalog (fault containment, breaker,\n"
        "timer lifecycle, determinism):\n"
        "  --max-tenants T    tenant roster cap (default 4)\n"
        "  --max-jobs J       timed submissions per scenario (default 14)\n"
        "  --no-faults        admission/scheduling space only\n";
}

long long parse_ll(const std::string& flag, const char* value) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(value, &used);
    if (used == std::string(value).size()) return v;
  } catch (...) {
  }
  throw homp::ConfigError(flag + " needs an integer, got '" +
                          std::string(value) + "'");
}

/// Dispatch --replay on the repro file's own shape.
int run_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "homp-fuzz: cannot open repro file: " << path << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  if (homp::fuzz::is_serve_scenario(buf.str())) {
    const auto outcome = homp::fuzz::serve_replay(path);
    std::cout << "replay: " << path << " (serve)\n";
    std::cout << "recorded: " << outcome.recorded_invariant << "\n";
    for (const auto& v : outcome.violations) {
      std::cout << "violation: " << v.invariant << " " << v.detail << "\n";
    }
    if (outcome.reproduced) {
      std::cout << "REPRODUCED: invariant '" << outcome.recorded_invariant
                << "' failed again\n";
      return 0;
    }
    std::cout << "NOT REPRODUCED: invariant '" << outcome.recorded_invariant
              << "' held this time\n";
    return 1;
  }

  const auto outcome = homp::fuzz::replay(path);
  std::cout << "replay: " << path << "\n";
  std::cout << "recorded: " << outcome.recorded_invariant;
  if (!outcome.recorded_algorithm.empty()) {
    std::cout << " (" << outcome.recorded_algorithm << ")";
  }
  std::cout << "\n";
  for (const auto& v : outcome.violations) {
    std::cout << "violation: " << v.invariant << " [" << v.algorithm << "] "
              << v.detail << "\n";
  }
  if (outcome.reproduced) {
    std::cout << "REPRODUCED: invariant '" << outcome.recorded_invariant
              << "' failed again\n";
    return 0;
  }
  std::cout << "NOT REPRODUCED: invariant '" << outcome.recorded_invariant
            << "' held this time\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using homp::fuzz::FuzzConfig;
  using homp::fuzz::ServeFuzzConfig;
  FuzzConfig cfg;
  ServeFuzzConfig serve_cfg;
  bool serve = false;
  std::string summary_out;
  std::string replay_path;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> const char* {
        if (i + 1 >= argc) {
          throw homp::ConfigError(arg + " needs a value");
        }
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        usage(std::cout);
        return 0;
      } else if (arg == "--serve") {
        serve = true;
      } else if (arg == "--seed") {
        cfg.seed = static_cast<std::uint64_t>(parse_ll(arg, value()));
        serve_cfg.seed = cfg.seed;
      } else if (arg == "--count") {
        cfg.count = static_cast<int>(parse_ll(arg, value()));
        serve_cfg.count = cfg.count;
      } else if (arg == "--max-devices") {
        cfg.limits.max_devices = static_cast<int>(parse_ll(arg, value()));
        serve_cfg.limits.max_devices = cfg.limits.max_devices;
      } else if (arg == "--max-tenants") {
        serve_cfg.limits.max_tenants = static_cast<int>(parse_ll(arg, value()));
      } else if (arg == "--max-jobs") {
        serve_cfg.limits.max_jobs = static_cast<int>(parse_ll(arg, value()));
      } else if (arg == "--no-faults") {
        serve_cfg.limits.allow_faults = false;
      } else if (arg == "--repro-dir") {
        cfg.repro_dir = value();
        serve_cfg.repro_dir = cfg.repro_dir;
      } else if (arg == "--summary-out") {
        summary_out = value();
      } else if (arg == "--no-shrink") {
        cfg.shrink_failures = false;
        serve_cfg.shrink_failures = false;
      } else if (arg == "--plant") {
        const std::string what = value();
        if (what == "corrupt-commit") {
          cfg.plant = true;
        } else if (what == "dsan-conflict") {
          cfg.plant_dsan = true;
        } else {
          throw homp::ConfigError(
              "unknown --plant mode '" + what +
              "' (corrupt-commit or dsan-conflict)");
        }
      } else if (arg == "--dsan") {
        cfg.dsan = true;
        serve_cfg.dsan = true;
      } else if (arg == "--replay") {
        replay_path = value();
      } else {
        throw homp::ConfigError("unknown argument '" + arg + "'");
      }
    }

    if ((cfg.dsan || serve_cfg.dsan || cfg.plant_dsan) &&
        !homp::sim::dsan::compiled_in()) {
      std::cerr << "homp-fuzz: --dsan needs the sanitizer compiled in "
                   "(rebuild without -DHOMP_DSAN=OFF)\n";
      return 2;
    }

    if (!replay_path.empty()) {
      return run_replay(replay_path);
    }

    if (serve) {
      if (cfg.plant || cfg.plant_dsan) {
        throw homp::ConfigError("--plant is not a serve-mode option");
      }
      const auto summary = homp::fuzz::run_serve_fuzz(serve_cfg);
      if (!summary_out.empty()) {
        std::ofstream out(summary_out, std::ios::binary);
        if (!out.good()) {
          std::cerr << "homp-fuzz: cannot write " << summary_out << "\n";
          return 2;
        }
        out << summary.json;
      }
      std::cout << summary.json;
      std::cerr << "homp-fuzz: " << summary.scenarios << " serve scenarios, "
                << summary.jobs << " jobs (" << summary.completed
                << " completed, " << summary.failed << " failed, "
                << summary.cancelled << " cancelled), " << summary.violations
                << " violations\n";
      for (const auto& f : summary.failures) {
        std::cerr << "  seed " << f.seed << ": " << f.invariant
                  << (f.repro_toml.empty() ? "" : " -> " + f.repro_toml)
                  << "\n";
      }
      return summary.violations == 0 ? 0 : 1;
    }

    const auto summary = homp::fuzz::run_fuzz(cfg);
    if (!summary_out.empty()) {
      std::ofstream out(summary_out, std::ios::binary);
      if (!out.good()) {
        std::cerr << "homp-fuzz: cannot write " << summary_out << "\n";
        return 2;
      }
      out << summary.json;
    }
    std::cout << summary.json;
    std::cerr << "homp-fuzz: " << summary.scenarios << " scenarios, "
              << summary.offloads << " offloads, " << summary.violations
              << " violations\n";
    for (const auto& f : summary.failures) {
      std::cerr << "  seed " << f.seed << ": " << f.invariant << " ["
                << f.algorithm << "]"
                << (f.repro_toml.empty() ? "" : " -> " + f.repro_toml)
                << "\n";
    }
    return summary.violations == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "homp-fuzz: " << e.what() << "\n";
    return 2;
  }
}
